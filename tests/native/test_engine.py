"""NativeRadixEngine byte-identity against the NumPy hybrid oracle.

Every (dtype, layout, packing) cell the hybrid engine supports must
come back byte-for-byte identical from the compiled tier — including
the float edge values (NaN, ±inf, -0.0) whose ordering is defined by
the §4.6 bijection, duplicate-heavy inputs (stability), and the empty /
single / constant degenerate shapes.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SortConfig
from repro.core.hybrid_sort import HybridRadixSorter

from repro.native import build

pytestmark = pytest.mark.skipif(
    not build.native_status(warn=False).available,
    reason="native extension not built on this host",
)

FLOAT_EDGES = {
    np.dtype(np.float32): [np.nan, np.inf, -np.inf, -0.0, 0.0],
    np.dtype(np.float64): [np.nan, np.inf, -np.inf, -0.0, 0.0],
}


def make_engine(config: SortConfig | None = None):
    from repro.native.engine import NativeRadixEngine

    return NativeRadixEngine(config=config)


def make_keys(dtype, n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    dtype = np.dtype(dtype)
    if dtype.kind == "f":
        keys = rng.normal(0, 1e6, n).astype(dtype)
        edges = FLOAT_EDGES[dtype]
        if n:
            where = rng.integers(0, n, size=max(1, n // 7))
            keys[where] = rng.choice(np.array(edges, dtype=dtype), where.size)
        return keys
    info = np.iinfo(dtype)
    return rng.integers(
        info.min, int(info.max) + 1, n, dtype=dtype
    )


def assert_identical(keys, values=None, config=None):
    native = make_engine(config).sort(
        keys, None if values is None else values.copy()
    )
    hybrid = HybridRadixSorter(config=config).sort(
        keys, None if values is None else values.copy()
    )
    assert native.keys.dtype == hybrid.keys.dtype
    assert native.keys.tobytes() == hybrid.keys.tobytes()
    if values is None:
        assert native.values is None
    else:
        assert native.values.tobytes() == hybrid.values.tobytes()
    return native


class TestKeysOnlyParity:
    @pytest.mark.parametrize(
        "dtype",
        [np.uint32, np.int32, np.float32, np.uint64, np.int64, np.float64],
    )
    @pytest.mark.parametrize("n", [0, 1, 2, 3, 100, 4097, 70_000])
    def test_byte_identity(self, dtype, n):
        assert_identical(make_keys(dtype, n, seed=n + 1))

    @pytest.mark.parametrize("dtype", [np.uint32, np.uint64])
    def test_degenerate_distributions(self, dtype, rng):
        n = 50_000
        constant = np.full(n, 7, dtype=dtype)
        assert_identical(constant)
        presorted = np.arange(n, dtype=dtype)
        assert_identical(presorted)
        assert_identical(presorted[::-1].copy())
        # All keys share the MSD digit: exercises the trivial-bucket
        # skip in the partition pass.
        low = rng.integers(0, 1 << 16, n).astype(dtype)
        assert_identical(low)

    def test_narrow_keys_with_explicit_config(self, rng):
        config = SortConfig(key_bits=8, digit_bits=4)
        keys = rng.integers(0, 256, 10_000, dtype=np.uint8)
        assert_identical(keys, config=config)

    @settings(max_examples=25, deadline=None)
    @given(
        data=st.lists(
            st.integers(0, 2**64 - 1), min_size=0, max_size=300
        ),
        dtype=st.sampled_from(
            [np.uint32, np.int32, np.uint64, np.int64]
        ),
    )
    def test_hypothesis_integer_identity(self, data, dtype):
        keys = np.array(data, dtype=np.uint64).astype(dtype)
        assert_identical(keys)

    @settings(max_examples=25, deadline=None)
    @given(
        data=st.lists(
            st.floats(width=32, allow_nan=True, allow_infinity=True),
            min_size=0,
            max_size=300,
        )
    )
    def test_hypothesis_float_identity(self, data):
        assert_identical(np.array(data, dtype=np.float32))
        assert_identical(np.array(data, dtype=np.float64))


class TestPairParity:
    @pytest.mark.parametrize("n", [0, 1, 2, 100, 4097, 70_000])
    def test_index_packed_pairs32(self, n):
        keys = make_keys(np.uint32, n, seed=n + 11)
        values = np.arange(n, dtype=np.uint32)
        native = assert_identical(keys, values)
        if n > 1:
            assert native.meta["packing"] == "index"

    @pytest.mark.parametrize("n", [0, 1, 2, 100, 4097, 70_000])
    def test_split_pairs64(self, n):
        keys = make_keys(np.uint64, n, seed=n + 13)
        values = np.arange(n, dtype=np.uint64)
        native = assert_identical(keys, values)
        if n > 1:
            assert native.meta["packing"] == "split"

    def test_split_degenerate_high_words(self, rng):
        # Constant high 32 bits: the split path's worst case.
        n = 30_000
        keys = rng.integers(0, 1 << 20, n).astype(np.uint64)
        values = np.arange(n, dtype=np.uint64)
        assert_identical(keys, values)

    def test_fused_packing(self, rng):
        config = replace(
            SortConfig.for_layout(32, 32), pair_packing="fused"
        )
        keys = rng.integers(0, 1 << 32, 30_000).astype(np.uint32)
        values = rng.integers(0, 1 << 32, 30_000).astype(np.uint32)
        native = assert_identical(keys, values, config=config)
        assert native.meta["packing"] == "fused"

    def test_decomposed_packing(self, rng):
        config = replace(SortConfig.for_layout(32, 32), pair_packing="off")
        keys = rng.integers(0, 1 << 32, 30_000).astype(np.uint32)
        values = np.arange(30_000, dtype=np.uint32)
        native = assert_identical(keys, values, config=config)
        assert native.meta["packing"] == "decomposed"

    def test_stability_under_heavy_duplicates(self, rng):
        # 16 distinct keys over 40k rows: ties everywhere; the payload
        # must come back in input order within each key group.
        keys = rng.integers(0, 16, 40_000).astype(np.uint32)
        values = np.arange(40_000, dtype=np.uint32)
        native = assert_identical(keys, values)
        for key in range(16):
            group = native.values[native.keys == key]
            assert np.all(group[:-1] <= group[1:])

    def test_float_keys_with_payload(self, rng):
        keys = make_keys(np.float64, 20_000, seed=17)
        values = np.arange(20_000, dtype=np.uint64)
        assert_identical(keys, values)


class TestEngineContract:
    def test_explicit_sort_bits_refused(self, rng):
        from repro.errors import ConfigurationError

        config = replace(SortConfig.for_layout(32, 0), sort_bits=12)
        keys = rng.integers(0, 1 << 32, 1000).astype(np.uint32)
        with pytest.raises(ConfigurationError, match="sort_bits"):
            make_engine(config).sort(keys)

    def test_config_layout_mismatch_refused(self, rng):
        from repro.errors import ConfigurationError

        config = SortConfig.for_layout(64, 0)
        keys = rng.integers(0, 1 << 32, 100).astype(np.uint32)
        with pytest.raises(ConfigurationError, match="64-bit keys"):
            make_engine(config).sort(keys)

    def test_shape_validation(self, rng):
        from repro.errors import ConfigurationError

        engine = make_engine()
        with pytest.raises(ConfigurationError, match="one-dimensional"):
            engine.sort(np.zeros((2, 2), dtype=np.uint32))
        with pytest.raises(ConfigurationError, match="parallel"):
            engine.sort(
                np.zeros(4, dtype=np.uint32), np.zeros(3, dtype=np.uint32)
            )

    def test_result_meta(self, rng):
        keys = rng.integers(0, 1 << 32, 1000).astype(np.uint32)
        result = make_engine().sort(keys)
        assert result.meta["engine"] == "native"
        assert result.trace is None
        assert result.simulated_seconds == 0.0

    def test_input_arrays_unmodified(self, rng):
        keys = rng.integers(0, 1 << 32, 10_000).astype(np.uint32)
        values = np.arange(10_000, dtype=np.uint32)
        keys_before, values_before = keys.copy(), values.copy()
        make_engine().sort(keys, values)
        assert np.array_equal(keys, keys_before)
        assert np.array_equal(values, values_before)


class TestShardCrossCheck:
    def test_sharded_sort_matches_native_engine(self, rng):
        import repro

        keys = rng.integers(0, 1 << 32, 120_000).astype(np.uint32)
        sharded = repro.sort(keys, shards=2, native="never")
        native = make_engine().sort(keys)
        assert sharded.keys.tobytes() == native.keys.tobytes()

    def test_sharded_pairs_match_native_engine(self, rng):
        import repro

        keys = rng.integers(0, 1 << 32, 120_000).astype(np.uint32)
        values = np.arange(120_000, dtype=np.uint32)
        sharded = repro.sort_pairs(keys, values, shards=3, native="never")
        native = make_engine().sort(keys, values)
        assert sharded.keys.tobytes() == native.keys.tobytes()
        assert sharded.values.tobytes() == native.values.tobytes()
