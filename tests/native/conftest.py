"""Shared fixtures for the native-tier tests.

The availability probe is process-cached; tests that fake a different
host (no cffi, ``REPRO_NATIVE=0``) must reset it before *and* after so
neither direction of contamination survives the test.
"""

from __future__ import annotations

import pytest

from repro.native import build


@pytest.fixture
def fresh_probe():
    """A clean probe cache around a test that manipulates it."""
    build._reset_status_cache()
    yield
    build._reset_status_cache()
