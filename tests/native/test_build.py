"""Build/probe machinery: caching, disabling, warnings, import safety."""

from __future__ import annotations

import os
import subprocess
import sys
import warnings

import pytest

from repro.errors import NativeUnavailableError
from repro.native import build

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


class TestProbeCache:
    def test_status_is_probed_once_per_process(self, fresh_probe, monkeypatch):
        first = build.native_status(warn=False)
        # A second call must not re-probe: replace the probe with a
        # tripwire and ask again.
        def boom():
            raise AssertionError("probe ran twice")

        monkeypatch.setattr(build, "_probe", boom)
        assert build.native_status(warn=False) is first

    def test_reset_forces_reprobe(self, fresh_probe, monkeypatch):
        build.native_status(warn=False)
        sentinel = build.NativeStatus(False, "sentinel probe")
        monkeypatch.setattr(build, "_probe", lambda: sentinel)
        build._reset_status_cache()
        assert build.native_status(warn=False) is sentinel

    def test_env_kill_switch(self, fresh_probe, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE", "0")
        status = build.native_status()
        assert not status.available
        assert "REPRO_NATIVE=0" in status.reason

    def test_env_kill_switch_does_not_warn(self, fresh_probe, monkeypatch):
        # Disabling is a choice, not a failure: no RuntimeWarning.
        monkeypatch.setenv("REPRO_NATIVE", "0")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            build.native_status(warn=True)


class TestUnavailableBehaviour:
    def test_failed_probe_warns_exactly_once(self, fresh_probe, monkeypatch):
        broken = build.NativeStatus(False, "compile/load failed: boom")
        monkeypatch.setattr(build, "_probe", lambda: broken)
        with pytest.warns(RuntimeWarning, match="falls? back to the NumPy"):
            build.native_status()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            build.native_status()  # second call: silent

    def test_load_native_raises_typed_error(self, fresh_probe, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE", "0")
        with pytest.raises(NativeUnavailableError, match="REPRO_NATIVE=0"):
            build.load_native()


class TestModuleNaming:
    def test_digest_is_stable_and_names_the_module(self):
        digest = build.source_digest()
        assert digest == build.source_digest()
        assert len(digest) == 12
        int(digest, 16)  # hex
        assert build._module_name() == f"_repro_native_{digest}"

    def test_cache_dir_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path / "cache"))
        assert build._cache_dir() == tmp_path / "cache"


class TestImportSafety:
    """``import repro`` must never fail for native-tier reasons."""

    def _run(self, code: str, env_extra: dict[str, str]) -> None:
        env = dict(os.environ, PYTHONPATH=REPO_SRC)
        env.update(env_extra)
        subprocess.run(
            [sys.executable, "-c", code], env=env, check=True, timeout=120
        )

    def test_import_and_sort_with_tier_disabled(self):
        self._run(
            "import numpy as np, repro;"
            "r = repro.sort(np.arange(200_000, dtype=np.uint32)[::-1].copy());"
            "assert r.meta['engine'] == 'hybrid';"
            "assert (r.keys[:-1] <= r.keys[1:]).all()",
            {"REPRO_NATIVE": "0"},
        )

    def test_import_and_sort_without_cffi(self, tmp_path):
        # A cffi that fails to import = a host that never installed it.
        (tmp_path / "cffi.py").write_text("raise ImportError('no cffi')\n")
        self._run(
            "import warnings, numpy as np;"
            "warnings.simplefilter('always');"
            "import repro;"
            "r = repro.sort(np.arange(200_000, dtype=np.uint32)[::-1].copy());"
            "assert r.meta['engine'] == 'hybrid';"
            "assert repro.native_status(warn=False).reason"
            "       == 'cffi not installed'",
            {
                "PYTHONPATH": f"{tmp_path}{os.pathsep}{REPO_SRC}",
                # Make the probe reach the cffi import even when the
                # outer test run disabled the tier via the env switch.
                "REPRO_NATIVE": "1",
            },
        )
