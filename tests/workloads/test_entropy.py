"""Tests for the Thearling entropy benchmark generator (§6)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.entropy import (
    ENTROPY_LADDER_32,
    ENTROPY_LADDER_64,
    and_depth_for_entropy,
    entropy_bits_for_and_depth,
    generate_entropy_keys,
    measured_key_entropy,
)


class TestLadderValues:
    """The x-axis labels of Figures 6 and 10-14."""

    def test_32bit_ladder_matches_paper(self):
        expected = [
            32.00, 25.96, 17.39, 10.79, 6.42, 3.72,
            2.11, 1.18, 0.65, 0.36, 0.19, 0.00,
        ]
        actual = [level.entropy_bits for level in ENTROPY_LADDER_32]
        assert actual == pytest.approx(expected, abs=0.005)

    def test_64bit_ladder_matches_paper(self):
        expected = [
            64.00, 51.92, 34.79, 21.59, 12.84, 7.43,
            4.22, 2.36, 1.31, 0.72, 0.39, 0.00,
        ]
        actual = [level.entropy_bits for level in ENTROPY_LADDER_64]
        assert actual == pytest.approx(expected, abs=0.005)

    def test_twelve_levels(self):
        # §6: "twelve different, increasingly skewed distributions".
        assert len(ENTROPY_LADDER_32) == 12
        assert len(ENTROPY_LADDER_64) == 12

    def test_last_level_is_constant(self):
        assert ENTROPY_LADDER_32[-1].is_constant
        assert ENTROPY_LADDER_64[-1].is_constant

    def test_strictly_decreasing(self):
        values = [level.entropy_bits for level in ENTROPY_LADDER_32]
        assert values == sorted(values, reverse=True)


class TestClosedForm:
    def test_paper_quoted_values(self):
        # §6: ANDing "once, twice, or three times, generates
        # distributions with entropies of 25.96, 17.39, and 10.79 bits".
        assert entropy_bits_for_and_depth(1, 32) == pytest.approx(25.96, abs=0.005)
        assert entropy_bits_for_and_depth(2, 32) == pytest.approx(17.39, abs=0.005)
        assert entropy_bits_for_and_depth(3, 32) == pytest.approx(10.79, abs=0.005)

    def test_depth_zero_is_uniform(self):
        assert entropy_bits_for_and_depth(0, 32) == pytest.approx(32.0)
        assert entropy_bits_for_and_depth(0, 64) == pytest.approx(64.0)

    def test_inverse_lookup(self):
        for depth in range(0, 8):
            bits = entropy_bits_for_and_depth(depth, 32)
            assert and_depth_for_entropy(bits, 32) == depth

    def test_inverse_lookup_zero(self):
        assert and_depth_for_entropy(0.0, 32) is None

    def test_invalid_depth(self):
        with pytest.raises(ConfigurationError):
            entropy_bits_for_and_depth(-1, 32)


class TestGenerator:
    def test_uniform_measured_entropy(self, rng):
        keys = generate_entropy_keys(1 << 16, 32, 0, rng)
        assert measured_key_entropy(keys) == pytest.approx(32.0, abs=0.05)

    def test_and1_measured_entropy(self, rng):
        keys = generate_entropy_keys(1 << 16, 32, 1, rng)
        assert measured_key_entropy(keys) == pytest.approx(25.96, abs=0.1)

    def test_and2_measured_entropy_64(self, rng):
        keys = generate_entropy_keys(1 << 16, 64, 2, rng)
        assert measured_key_entropy(keys) == pytest.approx(34.79, abs=0.2)

    def test_constant_distribution(self):
        keys = generate_entropy_keys(1000, 32, None)
        assert np.all(keys == 0)
        assert measured_key_entropy(keys) == 0.0

    def test_dtype(self, rng):
        assert generate_entropy_keys(10, 32, 0, rng).dtype == np.uint32
        assert generate_entropy_keys(10, 64, 0, rng).dtype == np.uint64

    def test_skew_reduces_set_bits(self, rng):
        shallow = generate_entropy_keys(1 << 14, 32, 0, rng)
        deep = generate_entropy_keys(1 << 14, 32, 4, rng)
        assert deep.astype(np.uint64).sum() < shallow.astype(np.uint64).sum()

    def test_empty(self, rng):
        assert generate_entropy_keys(0, 32, 0, rng).size == 0

    def test_invalid_bits(self, rng):
        with pytest.raises(ConfigurationError):
            generate_entropy_keys(10, 16, 0, rng)

    def test_deterministic_with_seed(self):
        a = generate_entropy_keys(100, 32, 1, np.random.default_rng(5))
        b = generate_entropy_keys(100, 32, 1, np.random.default_rng(5))
        assert np.array_equal(a, b)
