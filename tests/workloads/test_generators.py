"""Tests for the plain workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.generators import (
    constant_keys,
    generate_pairs,
    reverse_sorted_keys,
    sorted_keys,
    staircase_keys,
    uniform_keys,
)


class TestUniform:
    def test_dtype_and_size(self, rng):
        keys = uniform_keys(1000, 32, rng)
        assert keys.dtype == np.uint32
        assert keys.size == 1000

    def test_spans_key_space(self, rng):
        keys = uniform_keys(100_000, 32, rng)
        assert keys.max() > np.uint32(0xF0000000)
        assert keys.min() < np.uint32(0x10000000)


class TestConstant:
    def test_all_equal(self):
        keys = constant_keys(100, 32, value=42)
        assert np.all(keys == 42)

    def test_default_zero(self):
        assert np.all(constant_keys(10, 64) == 0)


class TestSortedVariants:
    def test_sorted(self, rng):
        keys = sorted_keys(1000, 32, rng)
        assert np.all(keys[:-1] <= keys[1:])

    def test_reverse(self, rng):
        keys = reverse_sorted_keys(1000, 32, rng)
        assert np.all(keys[:-1] >= keys[1:])

    def test_reverse_is_contiguous_copy(self, rng):
        keys = reverse_sorted_keys(10, 32, rng)
        assert keys.flags["C_CONTIGUOUS"]


class TestStaircase:
    def test_distinct_count(self):
        keys = staircase_keys(1600, 32, steps=16)
        assert np.unique(keys).size == 16

    def test_covers_requested_length(self):
        assert staircase_keys(1001, 32, steps=7).size == 1001

    def test_invalid_steps(self):
        with pytest.raises(ConfigurationError):
            staircase_keys(10, 32, steps=0)


class TestPairs:
    def test_index_payload(self, rng):
        keys = uniform_keys(100, 32, rng)
        k, v = generate_pairs(keys, 32)
        assert np.array_equal(v, np.arange(100, dtype=np.uint32))
        assert k is keys or np.array_equal(k, keys)

    def test_random_payload(self, rng):
        keys = uniform_keys(100, 32, rng)
        _, v = generate_pairs(keys, 64, rng=rng, payload="random")
        assert v.dtype == np.uint64

    def test_invalid_payload(self, rng):
        with pytest.raises(ConfigurationError):
            generate_pairs(uniform_keys(10, 32, rng), 32, payload="bogus")


class TestTypedKeys:
    def test_matches_named_generators_for_uint32(self, rng):
        from repro.workloads.generators import typed_keys

        seed_rng = np.random.default_rng(3)
        expected = uniform_keys(500, 32, np.random.default_rng(3))
        got = typed_keys(500, np.uint32, "uniform", seed_rng)
        assert np.array_equal(got, expected)

    def test_float_distribution_is_honoured(self):
        from repro.workloads.generators import typed_keys

        rng = np.random.default_rng(0)
        keys = typed_keys(2000, np.float32, "presorted", rng)
        assert keys.dtype == np.float32
        assert np.all(keys[:-1] <= keys[1:])
        rev = typed_keys(2000, np.float64, "reverse", np.random.default_rng(0))
        assert np.all(rev[:-1] >= rev[1:])
        zipf = typed_keys(2000, np.float64, "zipf", np.random.default_rng(0))
        # Zipfian skew survives the scaling: few distinct, many repeats.
        assert np.unique(zipf).size < 1000

    def test_floats_include_negatives(self):
        from repro.workloads.generators import typed_keys

        keys = typed_keys(1000, np.float64, "uniform", np.random.default_rng(1))
        assert (keys < 0).any() and (keys > 0).any()
        assert np.isfinite(keys).all()

    def test_signed_ints_include_negatives(self):
        from repro.workloads.generators import typed_keys

        keys = typed_keys(1000, np.int64, "uniform", np.random.default_rng(1))
        assert keys.dtype == np.int64
        assert (keys < 0).any() and (keys > 0).any()

    def test_narrow_unsigned(self):
        from repro.workloads.generators import typed_keys

        keys = typed_keys(1000, np.uint8, "constant", np.random.default_rng(1))
        assert keys.dtype == np.uint8 and np.all(keys == 0)
        uni = typed_keys(1000, np.uint16, "uniform", np.random.default_rng(1))
        assert uni.dtype == np.uint16

    def test_unknown_distribution(self):
        from repro.workloads.generators import typed_keys

        with pytest.raises(ConfigurationError):
            typed_keys(10, np.uint32, "bogus", np.random.default_rng(0))
