"""Tests for the plain workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.generators import (
    constant_keys,
    generate_pairs,
    reverse_sorted_keys,
    sorted_keys,
    staircase_keys,
    uniform_keys,
)


class TestUniform:
    def test_dtype_and_size(self, rng):
        keys = uniform_keys(1000, 32, rng)
        assert keys.dtype == np.uint32
        assert keys.size == 1000

    def test_spans_key_space(self, rng):
        keys = uniform_keys(100_000, 32, rng)
        assert keys.max() > np.uint32(0xF0000000)
        assert keys.min() < np.uint32(0x10000000)


class TestConstant:
    def test_all_equal(self):
        keys = constant_keys(100, 32, value=42)
        assert np.all(keys == 42)

    def test_default_zero(self):
        assert np.all(constant_keys(10, 64) == 0)


class TestSortedVariants:
    def test_sorted(self, rng):
        keys = sorted_keys(1000, 32, rng)
        assert np.all(keys[:-1] <= keys[1:])

    def test_reverse(self, rng):
        keys = reverse_sorted_keys(1000, 32, rng)
        assert np.all(keys[:-1] >= keys[1:])

    def test_reverse_is_contiguous_copy(self, rng):
        keys = reverse_sorted_keys(10, 32, rng)
        assert keys.flags["C_CONTIGUOUS"]


class TestStaircase:
    def test_distinct_count(self):
        keys = staircase_keys(1600, 32, steps=16)
        assert np.unique(keys).size == 16

    def test_covers_requested_length(self):
        assert staircase_keys(1001, 32, steps=7).size == 1001

    def test_invalid_steps(self):
        with pytest.raises(ConfigurationError):
            staircase_keys(10, 32, steps=0)


class TestPairs:
    def test_index_payload(self, rng):
        keys = uniform_keys(100, 32, rng)
        k, v = generate_pairs(keys, 32)
        assert np.array_equal(v, np.arange(100, dtype=np.uint32))
        assert k is keys or np.array_equal(k, keys)

    def test_random_payload(self, rng):
        keys = uniform_keys(100, 32, rng)
        _, v = generate_pairs(keys, 64, rng=rng, payload="random")
        assert v.dtype == np.uint64

    def test_invalid_payload(self, rng):
        with pytest.raises(ConfigurationError):
            generate_pairs(uniform_keys(10, 32, rng), 32, payload="bogus")
