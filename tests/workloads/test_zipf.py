"""Tests for the Gray et al. Zipfian generator (Figure 9's skewed case)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.zipf import zipf_keys, zipf_ranks


class TestZipfRanks:
    def test_range(self, rng):
        ranks = zipf_ranks(10_000, universe=1000, theta=0.75, rng=rng)
        assert ranks.min() >= 1
        assert ranks.max() <= 1000

    def test_skew_towards_low_ranks(self, rng):
        ranks = zipf_ranks(50_000, universe=10_000, theta=0.75, rng=rng)
        # Rank 1's share must dominate the median rank's share.
        share_low = np.mean(ranks <= 10)
        share_mid = np.mean((ranks >= 4995) & (ranks <= 5005))
        assert share_low > 10 * share_mid

    def test_higher_theta_is_more_skewed(self, rng):
        mild = zipf_ranks(50_000, 10_000, 0.25, np.random.default_rng(1))
        steep = zipf_ranks(50_000, 10_000, 0.95, np.random.default_rng(1))
        assert np.mean(steep <= 10) > np.mean(mild <= 10)

    def test_invalid_theta(self, rng):
        with pytest.raises(ConfigurationError):
            zipf_ranks(10, 100, 1.5, rng)
        with pytest.raises(ConfigurationError):
            zipf_ranks(10, 100, 0.0, rng)

    def test_invalid_universe(self, rng):
        with pytest.raises(ConfigurationError):
            zipf_ranks(10, 0, 0.75, rng)


class TestZipfKeys:
    def test_dtypes(self, rng):
        assert zipf_keys(100, 32, rng=rng).dtype == np.uint32
        assert zipf_keys(100, 64, rng=rng).dtype == np.uint64

    def test_repetition_present(self, rng):
        # The interesting property for a radix sort: heavy hitters.
        keys = zipf_keys(100_000, 64, theta=0.75, universe=1 << 16, rng=rng)
        _, counts = np.unique(keys, return_counts=True)
        assert counts.max() > 100

    def test_scramble_spreads_msd(self, rng):
        # Without scrambling, hot keys collapse onto low MSD digits.
        plain = zipf_keys(
            50_000, 64, universe=1 << 16, rng=np.random.default_rng(2),
            scramble=False,
        )
        mixed = zipf_keys(
            50_000, 64, universe=1 << 16, rng=np.random.default_rng(2),
            scramble=True,
        )
        msd_plain = np.unique(plain >> np.uint64(56)).size
        msd_mixed = np.unique(mixed >> np.uint64(56)).size
        assert msd_mixed > msd_plain

    def test_scramble_preserves_multiset_sizes(self):
        # Multiplicative hashing by an odd constant is a bijection, so
        # the repetition profile survives scrambling.
        a = zipf_keys(20_000, 32, universe=4096, rng=np.random.default_rng(3), scramble=False)
        b = zipf_keys(20_000, 32, universe=4096, rng=np.random.default_rng(3), scramble=True)
        _, ca = np.unique(a, return_counts=True)
        _, cb = np.unique(b, return_counts=True)
        assert sorted(ca.tolist()) == sorted(cb.tolist())

    def test_invalid_bits(self, rng):
        with pytest.raises(ConfigurationError):
            zipf_keys(10, 16, rng=rng)
