"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestSortCommand:
    def test_uniform_sort(self, capsys):
        rc = main(["sort", "--n", "50000", "--seed", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "sorted          : yes" in out
        assert "counting passes" in out

    def test_zipf_pairs(self, capsys):
        rc = main(
            ["sort", "--n", "30000", "--distribution", "zipf", "--pairs"]
        )
        assert rc == 0
        assert "GB/s" in capsys.readouterr().out

    def test_and_depth_distribution(self, capsys):
        rc = main(["sort", "--n", "20000", "--distribution", "and2"])
        assert rc == 0

    def test_baseline_engine(self, capsys):
        rc = main(["sort", "--n", "20000", "--engine", "cub"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "engine          : cub" in out

    def test_adaptive_engine(self, capsys):
        rc = main(["sort", "--n", "20000", "--engine", "adaptive"])
        assert rc == 0

    def test_constant_64bit(self, capsys):
        rc = main(
            ["sort", "--n", "20000", "--key-bits", "64",
             "--distribution", "constant"]
        )
        assert rc == 0

    def test_workers_flag(self, capsys):
        rc = main(["sort", "--n", "30000", "--pairs", "--workers", "2"])
        assert rc == 0
        assert "sorted          : yes" in capsys.readouterr().out

    def test_packing_flag(self, capsys):
        for packing in ("index", "fused", "off"):
            rc = main(
                ["sort", "--n", "20000", "--pairs", "--packing", packing]
            )
            assert rc == 0
            assert "sorted          : yes" in capsys.readouterr().out


class TestBenchWallclockCommand:
    def test_cases_and_workers_flags(self, capsys, tmp_path, monkeypatch):
        import json

        monkeypatch.chdir(tmp_path)
        rc = main(
            ["bench-wallclock", "--quick", "--workers", "2",
             "--cases", "pairs32-uniform", "--output", "report.json"]
        )
        assert rc == 0
        report = json.loads((tmp_path / "report.json").read_text())
        assert report["workers"] == 2
        assert report["cases"] == ["pairs32-uniform"]
        assert [r["name"] for r in report["results"]] == ["pairs32-uniform"]


class TestInfoCommand:
    def test_info_output(self, capsys):
        rc = main(["info", "--n", "1000000"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Titan X" in out
        assert "Table 3 presets" in out
        assert "max buckets (I3)" in out


class TestSweepCommand:
    def test_small_sweep(self, capsys):
        rc = main(
            ["sweep", "--n", "65536", "--target", "10000000", "--seed", "1"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "speed-up" in out
        # Twelve entropy rows plus the header lines.
        assert len(out.strip().splitlines()) == 14


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_engine(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sort", "--engine", "bogus"])
