"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestSortCommand:
    def test_uniform_sort(self, capsys):
        rc = main(["sort", "--n", "50000", "--seed", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "sorted          : yes" in out
        assert "counting passes" in out

    def test_zipf_pairs(self, capsys):
        rc = main(
            ["sort", "--n", "30000", "--distribution", "zipf", "--pairs"]
        )
        assert rc == 0
        assert "GB/s" in capsys.readouterr().out

    def test_and_depth_distribution(self, capsys):
        rc = main(["sort", "--n", "20000", "--distribution", "and2"])
        assert rc == 0

    def test_baseline_engine(self, capsys):
        rc = main(["sort", "--n", "20000", "--engine", "cub"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "engine          : cub" in out

    def test_adaptive_engine(self, capsys):
        rc = main(["sort", "--n", "20000", "--engine", "adaptive"])
        assert rc == 0

    def test_constant_64bit(self, capsys):
        rc = main(
            ["sort", "--n", "20000", "--key-bits", "64",
             "--distribution", "constant"]
        )
        assert rc == 0

    def test_workers_flag(self, capsys):
        rc = main(["sort", "--n", "30000", "--pairs", "--workers", "2"])
        assert rc == 0
        assert "sorted          : yes" in capsys.readouterr().out

    def test_packing_flag(self, capsys):
        for packing in ("index", "fused", "off"):
            rc = main(
                ["sort", "--n", "20000", "--pairs", "--packing", packing]
            )
            assert rc == 0
            assert "sorted          : yes" in capsys.readouterr().out


class TestPlanCommand:
    def test_array_plan_explains_without_executing(self, capsys):
        from repro.native.build import native_status

        rc = main(["plan", "--n", "1000000"])
        out = capsys.readouterr().out
        assert rc == 0
        # The chosen tier depends on whether this host compiled the
        # native extension; either way the plan says which and why.
        if native_status(warn=False).available:
            assert "strategy        : native" in out
            assert "native-lsd" in out
        else:
            assert "strategy        : hybrid" in out
            assert "hybrid-msd" in out
        assert "note            : native tier" in out
        assert "predicted total" in out

    def test_budgeted_plan_chooses_chunked_pipeline(self, capsys):
        rc = main(["plan", "--n", "8000000", "--memory-budget", "4M"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "strategy        : hetero" in out
        assert "chunked-pipeline" in out

    def test_adaptive_plan_falls_back_below_crossover(self, capsys):
        rc = main(["plan", "--n", "100000", "--adaptive"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "strategy        : fallback" in out

    def test_file_plan(self, tmp_path, capsys):
        data = str(tmp_path / "data.bin")
        assert main(
            ["gen-file", "--output", data, "--n", "20000",
             "--dtype", "uint32"]
        ) == 0
        capsys.readouterr()
        rc = main(
            ["plan", "--input", data, "--dtype", "uint32",
             "--memory-budget", "20K", "--workers", "2"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "strategy        : external" in out
        assert "spill-runs" in out
        assert "kway-merge" in out

    def test_missing_file_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["plan", "--input", str(tmp_path / "nope.bin")])

    def test_plan_line_in_sort_output(self, capsys):
        rc = main(["sort", "--n", "20000"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "plan            : hybrid" in out

    def test_plan_line_in_sort_file_output(self, tmp_path, capsys):
        data = str(tmp_path / "d.bin")
        out_path = str(tmp_path / "s.bin")
        assert main(["gen-file", "--output", data, "--n", "9000"]) == 0
        rc = main(
            ["sort-file", "--input", data, "--output", out_path,
             "--memory-budget", "12K"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "plan            : external (spill-runs, kway-merge)" in out

    def test_plan_reports_cost_source(self, capsys):
        rc = main(["plan", "--n", "1000000"])
        out = capsys.readouterr().out
        assert rc == 0
        # The test suite pins an uncalibrated environment (conftest).
        assert "cost source     : paper-analytical" in out


class TestCalibrateCommand:
    def test_calibrate_writes_profile_and_plan_uses_it(
        self, tmp_path, capsys
    ):
        import json
        import os

        # The conftest autouse fixture points REPRO_HOST_PROFILE at a
        # (nonexistent) per-test path; calibrating into that exact path
        # is what a user's `repro calibrate` + `repro plan` does.
        path = os.environ["REPRO_HOST_PROFILE"]
        rc = main(
            ["calibrate", "--quick", "--n", "2048", "--output", path]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "counting-scatter 32/0" in out
        assert "stable argsort" in out
        assert "external spill" in out
        assert f"wrote {path}" in out
        assert "fingerprint hp-" in out
        doc = json.loads(open(path).read())
        assert doc["probes"] == {
            "n": 2048, "repeats": 1, "quick": True, "seed": 20170514,
        }
        rc = main(["plan", "--n", "1000000"])
        out = capsys.readouterr().out
        assert rc == 0
        assert f"cost source     : host-profile ({doc['fingerprint']})" in out

    def test_calibrate_default_output_honours_env(self, capsys):
        import os

        path = os.environ["REPRO_HOST_PROFILE"]
        rc = main(["calibrate", "--quick", "--n", "1024"])
        out = capsys.readouterr().out
        assert rc == 0
        assert f"wrote {path}" in out
        assert os.path.exists(path)


class TestBenchWallclockCommand:
    def test_cases_and_workers_flags(self, capsys, tmp_path, monkeypatch):
        import json

        monkeypatch.chdir(tmp_path)
        rc = main(
            ["bench-wallclock", "--quick", "--workers", "2",
             "--cases", "pairs32-uniform", "--output", "report.json"]
        )
        assert rc == 0
        report = json.loads((tmp_path / "report.json").read_text())
        assert report["workers"] == 2
        assert report["cases"] == ["pairs32-uniform"]
        assert [r["name"] for r in report["results"]] == ["pairs32-uniform"]


class TestInfoCommand:
    def test_info_output(self, capsys):
        rc = main(["info", "--n", "1000000"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Titan X" in out
        assert "Table 3 presets" in out
        assert "max buckets (I3)" in out


class TestSweepCommand:
    def test_small_sweep(self, capsys):
        rc = main(
            ["sweep", "--n", "65536", "--target", "10000000", "--seed", "1"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "speed-up" in out
        # Twelve entropy rows plus the header lines.
        assert len(out.strip().splitlines()) == 14


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_engine(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sort", "--engine", "bogus"])


class TestGenAndSortFile:
    def test_roundtrip_keys(self, tmp_path, capsys):
        data = str(tmp_path / "data.bin")
        out = str(tmp_path / "sorted.bin")
        rc = main(
            ["gen-file", "--output", data, "--n", "20000",
             "--dtype", "uint32", "--distribution", "zipf"]
        )
        assert rc == 0
        assert "wrote" in capsys.readouterr().out
        rc = main(
            ["sort-file", "--input", data, "--output", out,
             "--dtype", "uint32", "--memory-budget", "20K", "--verify"]
        )
        stdout = capsys.readouterr().out
        assert rc == 0
        assert "verified        : yes" in stdout
        assert "runs            :" in stdout

    def test_roundtrip_pairs_with_workers(self, tmp_path, capsys):
        data = str(tmp_path / "pairs.bin")
        out = str(tmp_path / "sorted.bin")
        assert main(
            ["gen-file", "--output", data, "--n", "15000", "--pairs",
             "--dtype", "uint32", "--value-dtype", "uint32"]
        ) == 0
        rc = main(
            ["sort-file", "--input", data, "--output", out, "--pairs",
             "--dtype", "uint32", "--value-dtype", "uint32",
             "--memory-budget", "30K", "--workers", "2", "--verify"]
        )
        assert rc == 0
        assert "verified        : yes" in capsys.readouterr().out

    def test_float_keys(self, tmp_path, capsys):
        data = str(tmp_path / "f.bin")
        out = str(tmp_path / "fs.bin")
        assert main(
            ["gen-file", "--output", data, "--n", "10000",
             "--dtype", "float32"]
        ) == 0
        rc = main(
            ["sort-file", "--input", data, "--output", out,
             "--dtype", "float32", "--memory-budget", "10K", "--verify"]
        )
        assert rc == 0
        assert "verified        : yes" in capsys.readouterr().out

    def test_memory_budget_suffixes(self):
        from repro.cli import _parse_size

        assert _parse_size("64") == 64
        assert _parse_size("4K") == 4096
        assert _parse_size("2M") == 2 << 20
        assert _parse_size("1G") == 1 << 30
        with pytest.raises(SystemExit):
            _parse_size("lots")
        with pytest.raises(SystemExit):
            _parse_size("-5")

    def test_missing_input_errors(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(
                ["sort-file", "--input", str(tmp_path / "nope.bin"),
                 "--output", str(tmp_path / "out.bin")]
            )
        assert "error" in str(exc.value)

    def test_torn_input_errors(self, tmp_path):
        data = tmp_path / "torn.bin"
        data.write_bytes(b"\x00" * 6)  # not a multiple of 4
        with pytest.raises(SystemExit) as exc:
            main(
                ["sort-file", "--input", str(data),
                 "--output", str(tmp_path / "out.bin"), "--dtype", "uint32"]
            )
        assert "multiple" in str(exc.value)


class TestChaosCommand:
    def test_list_prints_the_site_table(self, capsys):
        rc = main(["chaos", "--list"])
        out = capsys.readouterr().out
        assert rc == 0
        from repro.resilience.faults import SITES

        for site in SITES:
            assert site in out

    def test_single_site_sweep_is_contained(self, capsys):
        rc = main(["chaos", "--site", "engine.hybrid", "--n", "3000"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "1 scenario(s), 1 contained, 0 failed" in out

    def test_unknown_site_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            main(["chaos", "--site", "engine.imaginary"])


class TestSortFileResume:
    def test_resume_without_spool_dir_is_an_error(self, tmp_path):
        with pytest.raises(SystemExit, match="--spool-dir"):
            main(
                ["sort-file", "--input", str(tmp_path / "in.bin"),
                 "--output", str(tmp_path / "out.bin"), "--resume"]
            )

    def test_interrupt_then_resume_via_cli(self, tmp_path, capsys):
        import numpy as np

        from repro.external import ExternalSorter, FileLayout, write_records
        from repro.resilience.faults import FaultPlan, inject

        layout = FileLayout("uint32")
        rng = np.random.default_rng(9)
        keys = rng.integers(0, 1 << 32, 20_000, dtype=np.uint64).astype(
            np.uint32
        )
        inp = str(tmp_path / "in.bin")
        out = str(tmp_path / "out.bin")
        spool = str(tmp_path / "spool")
        write_records(inp, keys)
        sorter = ExternalSorter(
            memory_budget=keys.nbytes // 4, spool_dir=spool,
            retry_policy=None,
        )
        with inject(FaultPlan.single("external.merge_read")):
            with pytest.raises(Exception):
                sorter.sort_file(inp, out, layout)
        rc = main(
            ["sort-file", "--input", inp, "--output", out,
             "--dtype", "uint32", "--spool-dir", spool, "--resume",
             "--memory-budget", str(keys.nbytes // 4), "--verify"]
        )
        stdout = capsys.readouterr().out
        assert rc == 0
        assert "resumed         : reused" in stdout
        assert "verified        : yes" in stdout
        got = np.fromfile(out, dtype=np.uint32)
        assert np.array_equal(got, np.sort(keys))
