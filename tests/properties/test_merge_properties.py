"""Property-based tests for the CPU multiway merge and PARADIS."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.paradis import ParadisSorter
from repro.hetero.merge import kway_merge, kway_merge_pairs

run_lists = st.lists(
    st.lists(st.integers(0, 10**6), min_size=0, max_size=200),
    min_size=0,
    max_size=12,
)


@settings(max_examples=60, deadline=None)
@given(run_lists)
def test_kway_merge_equals_global_sort(runs):
    arrays = [np.sort(np.array(r, dtype=np.uint64)) for r in runs]
    merged = kway_merge(arrays)
    expected = np.sort(
        np.concatenate(arrays) if arrays else np.empty(0, dtype=np.uint64)
    )
    assert np.array_equal(merged, expected)


@settings(max_examples=40, deadline=None)
@given(run_lists)
def test_kway_merge_pairs_consistency(runs):
    key_runs, value_runs = [], []
    offset = 0
    all_keys = []
    for r in runs:
        keys = np.array(r, dtype=np.uint64)
        values = np.arange(offset, offset + keys.size, dtype=np.uint64)
        order = np.argsort(keys, kind="stable")
        key_runs.append(keys[order])
        value_runs.append(values[order])
        all_keys.append(keys)
        offset += keys.size
    mk, mv = kway_merge_pairs(key_runs, value_runs)
    flat = (
        np.concatenate(all_keys) if all_keys else np.empty(0, dtype=np.uint64)
    )
    if flat.size:
        assert np.array_equal(mk, np.sort(flat))
        assert np.array_equal(flat[mv], mk)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.integers(0, 2**64 - 1), min_size=0, max_size=1500),
    st.integers(1, 16),
)
def test_paradis_sorts_any_input(values, workers):
    keys = np.array(values, dtype=np.uint64)
    result = ParadisSorter(workers=workers).sort(keys)
    assert np.array_equal(result.keys, np.sort(keys))


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 255), min_size=0, max_size=800))
def test_paradis_low_cardinality(values):
    keys = np.array(values, dtype=np.uint64)
    result = ParadisSorter(workers=4, comparison_threshold=8).sort(keys)
    assert np.array_equal(result.keys, np.sort(keys))
