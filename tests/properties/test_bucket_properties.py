"""Property-based tests for bucket partitioning and the §4.5 bounds."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bucket import partition_subbuckets, subdivide_into_blocks

counts_matrices = st.lists(
    st.lists(st.integers(0, 300), min_size=8, max_size=8),
    min_size=1,
    max_size=12,
).map(lambda rows: np.array(rows, dtype=np.int64))


def _offsets_for(counts):
    totals = counts.sum(axis=1)
    return np.concatenate(([0], np.cumsum(totals)[:-1]))


@settings(max_examples=80, deadline=None)
@given(counts_matrices, st.integers(1, 128), st.integers(0, 128))
def test_partition_conserves_keys(counts, merge_extra, local_extra):
    merge = merge_extra
    local = merge + local_extra
    out = partition_subbuckets(
        _offsets_for(counts), counts, merge, local
    )
    assert out.local_sizes.sum() + out.next_sizes.sum() == counts.sum()


@settings(max_examples=80, deadline=None)
@given(counts_matrices)
def test_classification_thresholds(counts):
    merge, local = 40, 128
    out = partition_subbuckets(_offsets_for(counts), counts, merge, local)
    # R1/R2: local buckets fit ∂̂, counting buckets exceed it.
    assert np.all(out.local_sizes <= local)
    assert np.all(out.local_sizes >= 1)
    assert np.all(out.next_sizes > local)
    # R3: merged buckets stay below ∂.
    assert np.all(out.local_sizes[out.local_is_merged] < merge)


@settings(max_examples=80, deadline=None)
@given(counts_matrices)
def test_extents_disjoint_and_within_parents(counts):
    offsets = _offsets_for(counts)
    out = partition_subbuckets(offsets, counts, 40, 128)
    spans = sorted(
        list(zip(out.local_offsets.tolist(), out.local_sizes.tolist()))
        + list(zip(out.next_offsets.tolist(), out.next_sizes.tolist()))
    )
    for (o1, s1), (o2, _) in zip(spans, spans[1:]):
        assert o1 + s1 <= o2
    if spans:
        assert spans[0][0] >= 0
        assert spans[-1][0] + spans[-1][1] <= counts.sum() + offsets[0]


@settings(max_examples=60, deadline=None)
@given(counts_matrices)
def test_merging_never_increases_bucket_count(counts):
    offsets = _offsets_for(counts)
    merged = partition_subbuckets(offsets, counts, 40, 128, True)
    unmerged = partition_subbuckets(offsets, counts, 40, 128, False)
    assert (
        merged.n_local + merged.n_next
        <= unmerged.n_local + unmerged.n_next
    )
    # Counting buckets are identical either way.
    assert np.array_equal(merged.next_offsets, unmerged.next_offsets)


@settings(max_examples=60, deadline=None)
@given(counts_matrices)
def test_i3_adjacent_locals_within_parent_exceed_merge_threshold(counts):
    # The invariant behind I3: any two *adjacent* surviving local
    # buckets of the same parent total at least ∂.
    merge, local = 40, 128
    offsets = _offsets_for(counts)
    out = partition_subbuckets(offsets, counts, merge, local)
    parent_of = np.searchsorted(offsets, out.local_offsets, side="right") - 1
    order = np.argsort(out.local_offsets)
    ordered_offsets = out.local_offsets[order]
    ordered_sizes = out.local_sizes[order]
    ordered_parents = parent_of[order]
    for i in range(len(order) - 1):
        if ordered_parents[i] != ordered_parents[i + 1]:
            continue
        # Only *adjacent* buckets (no counting bucket between them).
        if ordered_offsets[i] + ordered_sizes[i] != ordered_offsets[i + 1]:
            continue
        assert ordered_sizes[i] + ordered_sizes[i + 1] >= merge


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(1, 5000), min_size=1, max_size=30),
    st.integers(1, 512),
)
def test_blocks_tile_buckets_exactly(sizes, kpb):
    sizes = np.array(sizes, dtype=np.int64)
    offsets = np.concatenate(([0], np.cumsum(sizes)[:-1]))
    b_offsets, b_sizes, b_ids = subdivide_into_blocks(offsets, sizes, kpb)
    assert b_sizes.sum() == sizes.sum()
    assert np.all(b_sizes >= 1)
    assert np.all(b_sizes <= kpb)
    # Blocks of one bucket tile it contiguously.
    for b in range(sizes.size):
        mask = b_ids == b
        assert b_sizes[mask].sum() == sizes[b]
        assert b_offsets[mask][0] == offsets[b]
