"""Property tests: packed pair engines vs the decomposed argsort oracle.

The hybrid sorter's key-value fast paths pack key bits and a payload
into one unsigned word (``repro.core.pairs``).  The index payload is
the stability tie-break, so the packed engines must reproduce the
decomposed stable-argsort pipeline (``pair_packing="off"`` — the seed
implementation, kept as the oracle) *bit for bit*: same keys, same
values, for every key/value width, duplicates-heavy and constant
inputs, shared high words (the 64-bit split refinement), and any worker
count.  The fused packing trades the input-order tie-break for a
value-bits tie-break; its oracle is the record sort ``lexsort((value
bits, key))``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SortConfig
from repro.core.hybrid_sort import HybridRadixSorter
from repro.core.pairs import (
    fused_packable,
    index_packable,
    join_words64,
    pack_key_index,
    pack_key_value,
    split_words64,
    unpack_key_index,
    unpack_key_value,
)

KEY_DTYPES = {8: np.uint8, 16: np.uint16, 32: np.uint32, 64: np.uint64}
VALUE_DTYPES = {8: np.uint8, 16: np.uint16, 32: np.uint32, 64: np.uint64}


def _config(key_bits: int, value_bits: int, **overrides) -> SortConfig:
    """A miniature pair configuration forcing multi-pass structure."""
    return SortConfig(
        key_bits=key_bits,
        value_bits=value_bits,
        kpb=96,
        threads=32,
        kpt=3,
        local_threshold=128,
        merge_threshold=40,
        local_sort_configs=(16, 32, 64, 128),
        **overrides,
    )


def _sort(keys, values, key_bits, value_bits, **overrides):
    config = _config(key_bits, value_bits, **overrides)
    return HybridRadixSorter(config=config).sort(keys, values)


@st.composite
def pair_inputs(draw):
    key_bits = draw(st.sampled_from(sorted(KEY_DTYPES)))
    value_bits = draw(st.sampled_from(sorted(VALUE_DTYPES)))
    n = draw(st.integers(0, 900))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    shape = draw(st.sampled_from(["uniform", "dupes", "constant", "lowhigh"]))
    if shape == "uniform":
        keys = rng.integers(0, 2**key_bits, n, dtype=np.uint64)
    elif shape == "dupes":
        keys = rng.integers(0, 7, n, dtype=np.uint64)
    elif shape == "constant":
        keys = np.full(n, draw(st.integers(0, 2**key_bits - 1)) % 251, dtype=np.uint64)
    else:
        # Few distinct high words over random low bits: exercises the
        # 64-bit split's run refinement (harmless for narrow keys).
        half = max(1, key_bits // 2)
        highs = rng.integers(0, 3, n, dtype=np.uint64) << np.uint64(half)
        keys = highs | rng.integers(0, 2**half, n, dtype=np.uint64)
    keys = keys.astype(KEY_DTYPES[key_bits])
    values = rng.integers(0, 2**value_bits, n, dtype=np.uint64).astype(
        VALUE_DTYPES[value_bits]
    )
    return keys, values, key_bits, value_bits


@settings(max_examples=120, deadline=None)
@given(pair_inputs())
def test_packed_engines_bit_identical_to_argsort_oracle(inputs):
    keys, values, key_bits, value_bits = inputs
    oracle = _sort(keys, values, key_bits, value_bits, pair_packing="off")
    for mode in ("auto", "index"):
        packed = _sort(keys, values, key_bits, value_bits, pair_packing=mode)
        assert np.array_equal(packed.keys, oracle.keys)
        assert np.array_equal(packed.values, oracle.values)
        assert packed.values.dtype == oracle.values.dtype


@settings(max_examples=60, deadline=None)
@given(pair_inputs())
def test_fused_engine_matches_record_sort_oracle(inputs):
    keys, values, key_bits, value_bits = inputs
    if not fused_packable(key_bits, value_bits):
        return
    result = _sort(keys, values, key_bits, value_bits, pair_packing="fused")
    order = np.lexsort((values, keys))
    assert np.array_equal(result.keys, keys[order])
    assert np.array_equal(result.values, values[order])


@settings(max_examples=40, deadline=None)
@given(pair_inputs())
def test_worker_counts_produce_identical_output(inputs):
    keys, values, key_bits, value_bits = inputs
    base = _sort(keys, values, key_bits, value_bits, workers=1)
    for workers in (2, 8):
        threaded = _sort(keys, values, key_bits, value_bits, workers=workers)
        assert np.array_equal(threaded.keys, base.keys)
        assert np.array_equal(threaded.values, base.values)


class TestPackedDispatch:
    """Deterministic probes of the packing mode resolution."""

    def test_auto_picks_index_for_narrow_keys(self, rng):
        keys = rng.integers(0, 2**32, 500, dtype=np.uint64).astype(np.uint32)
        values = np.arange(500, dtype=np.uint32)
        result = _sort(keys, values, 32, 32)
        assert result.meta["packing"] == "index"

    def test_auto_picks_split_for_wide_keys(self, rng):
        keys = rng.integers(0, 2**64, 500, dtype=np.uint64)
        values = np.arange(500, dtype=np.uint64)
        result = _sort(keys, values, 64, 64)
        assert result.meta["packing"] == "split"

    def test_degenerate_split_shared_high_word(self, rng):
        # 64-bit keys that all fit 32 bits: the split path must detect
        # the constant high word and sort on the low word alone —
        # still bit-identical to the decomposed oracle.
        keys = rng.integers(0, 2**32, 3000, dtype=np.uint64)
        values = rng.integers(0, 2**32, 3000, dtype=np.uint64)
        oracle = _sort(keys, values, 64, 64, pair_packing="off")
        packed = _sort(keys, values, 64, 64)
        assert packed.meta["packing"] == "split"
        assert np.array_equal(packed.keys, oracle.keys)
        assert np.array_equal(packed.values, oracle.values)
        # Same for a non-zero shared high word.
        shifted = keys | np.uint64(7 << 32)
        oracle = _sort(shifted, values, 64, 64, pair_packing="off")
        packed = _sort(shifted, values, 64, 64)
        assert np.array_equal(packed.keys, oracle.keys)
        assert np.array_equal(packed.values, oracle.values)

    def test_off_and_keys_only_stay_decomposed(self, rng):
        keys = rng.integers(0, 2**32, 500, dtype=np.uint64).astype(np.uint32)
        values = np.arange(500, dtype=np.uint32)
        off = _sort(keys, values, 32, 32, pair_packing="off")
        assert off.meta["packing"] == "decomposed"
        keys_only = HybridRadixSorter(config=_config(32, 0)).sort(keys)
        assert keys_only.meta["packing"] == "decomposed"

    def test_fused_rejected_for_wide_records(self, rng):
        from repro.errors import ConfigurationError

        keys = rng.integers(0, 2**64, 100, dtype=np.uint64)
        values = np.arange(100, dtype=np.uint64)
        with pytest.raises(ConfigurationError):
            _sort(keys, values, 64, 64, pair_packing="fused")

    def test_signed_and_float_keys_through_packed_paths(self, rng):
        for dtype in (np.int32, np.float32, np.int64, np.float64):
            keys = (rng.normal(size=800) * 1000).astype(dtype)
            values = np.arange(800, dtype=np.uint32)
            result = HybridRadixSorter().sort(keys, values)
            order = np.argsort(keys, kind="stable")
            assert np.array_equal(result.keys, keys[order])
            assert np.array_equal(result.values, values[order])

    def test_trace_reports_pair_layout_not_packed_word(self, rng):
        keys = rng.integers(0, 2**32, 2000, dtype=np.uint64).astype(np.uint32)
        values = np.arange(2000, dtype=np.uint32)
        result = _sort(keys, values, 32, 32)
        assert result.trace.key_bits == 32
        assert result.trace.value_bits == 32
        for pass_trace in result.trace.counting_passes:
            assert pass_trace.key_bytes == 4
            assert pass_trace.value_bytes == 4
        for local_trace in result.trace.local_sorts:
            assert local_trace.key_bytes == 4
            assert local_trace.value_bytes == 4

    def test_split_trace_charges_low_word_to_local_sorts(self, rng):
        # The split run partitions on the high word's 4 digits only;
        # the trace must still report remaining digits of the true
        # 8-digit key so the cost model prices the paper's kernel.
        keys = rng.integers(0, 2**64, 4000, dtype=np.uint64)
        values = np.arange(4000, dtype=np.uint64)
        result = _sort(keys, values, 64, 64)
        assert result.meta["packing"] == "split"
        num_digits = _config(64, 64).num_digits
        for local_trace in result.trace.local_sorts:
            pass_floor = local_trace.pass_index
            assert np.all(
                local_trace.bucket_remaining >= num_digits - pass_floor - 1
            )


class TestPackingPrimitives:
    def test_index_roundtrip(self, rng):
        for key_bits in (8, 16, 32):
            bits = rng.integers(
                0, 2**key_bits, 1000, dtype=np.uint64
            ).astype(KEY_DTYPES[key_bits])
            packed = pack_key_index(bits, key_bits)
            out_bits, perm = unpack_key_index(packed, key_bits)
            assert np.array_equal(out_bits, bits)
            assert np.array_equal(perm, np.arange(1000))

    def test_index_packed_sort_is_stable_sort(self, rng):
        bits = rng.integers(0, 4, 2000, dtype=np.uint64).astype(np.uint32)
        packed = np.sort(pack_key_index(bits, 32))
        out_bits, perm = unpack_key_index(packed, 32)
        order = np.argsort(bits, kind="stable")
        assert np.array_equal(out_bits, bits[order])
        assert np.array_equal(perm, order)

    def test_fused_roundtrip_word_widths(self, rng):
        for key_bits, value_bits, word in (
            (16, 16, np.uint32),
            (32, 32, np.uint64),
            (32, 16, np.uint64),
            (8, 8, np.uint32),
        ):
            bits = rng.integers(
                0, 2**key_bits, 500, dtype=np.uint64
            ).astype(KEY_DTYPES[key_bits])
            values = rng.integers(
                0, 2**value_bits, 500, dtype=np.uint64
            ).astype(VALUE_DTYPES[value_bits])
            packed = pack_key_value(bits, values, key_bits)
            assert packed.dtype == word
            out_bits, out_values = unpack_key_value(
                packed, key_bits, values.dtype
            )
            assert np.array_equal(out_bits, bits)
            assert np.array_equal(out_values, values)

    def test_index_packable_bounds(self):
        assert index_packable(32, 2**32)
        assert not index_packable(32, 2**32 + 1)
        assert not index_packable(64, 2)
        assert index_packable(16, 2**48)

    def test_split_join_words64(self, rng):
        words = rng.integers(0, 2**64, 1000, dtype=np.uint64)
        high, low = split_words64(words)
        assert high.dtype == low.dtype == np.uint32
        assert np.array_equal(
            high.astype(np.uint64) << np.uint64(32) | low, words
        )
        assert np.array_equal(join_words64(high, low), words)
