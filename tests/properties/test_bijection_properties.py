"""Property-based tests for the order-preserving bijections (§4.6)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.keys import from_sortable_bits, to_sortable_bits


@settings(max_examples=100, deadline=None)
@given(st.integers(-(2**31), 2**31 - 1), st.integers(-(2**31), 2**31 - 1))
def test_int32_order_preserved(a, b):
    arr = np.array([a, b], dtype=np.int32)
    bits = to_sortable_bits(arr)
    assert (a < b) == (bits[0] < bits[1])
    assert (a == b) == (bits[0] == bits[1])


@settings(max_examples=100, deadline=None)
@given(st.integers(-(2**63), 2**63 - 1), st.integers(-(2**63), 2**63 - 1))
def test_int64_order_preserved(a, b):
    arr = np.array([a, b], dtype=np.int64)
    bits = to_sortable_bits(arr)
    assert (a < b) == (bits[0] < bits[1])


@settings(max_examples=100, deadline=None)
@given(
    st.floats(allow_nan=False, width=32),
    st.floats(allow_nan=False, width=32),
)
def test_float32_order_preserved(a, b):
    arr = np.array([a, b], dtype=np.float32)
    bits = to_sortable_bits(arr)
    va, vb = arr[0], arr[1]
    if va < vb:
        assert bits[0] < bits[1]
    elif va > vb:
        assert bits[0] > bits[1]


@settings(max_examples=100, deadline=None)
@given(st.floats(allow_nan=False, width=64))
def test_float64_roundtrip(x):
    arr = np.array([x], dtype=np.float64)
    back = from_sortable_bits(to_sortable_bits(arr), np.float64)
    assert back[0] == arr[0] or (np.isnan(back[0]) and np.isnan(arr[0]))
    # Bit-exact roundtrip, including signed zeros.
    assert back.tobytes() == arr.tobytes()


@settings(max_examples=100, deadline=None)
@given(st.integers(0, 2**64 - 1))
def test_uint64_identity(x):
    arr = np.array([x], dtype=np.uint64)
    bits = to_sortable_bits(arr)
    assert bits[0] == arr[0]
    assert from_sortable_bits(bits, np.uint64)[0] == x


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.floats(allow_nan=False, width=64), min_size=2, max_size=100)
)
def test_float64_argsort_agreement(values):
    arr = np.array(values, dtype=np.float64)
    bits = to_sortable_bits(arr)
    assert np.array_equal(np.sort(arr), arr[np.argsort(bits, kind="stable")])
