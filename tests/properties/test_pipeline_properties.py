"""Property-based tests for the pipeline schedule invariants (§5)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hetero.pipeline import simulate_pipeline

stage_times = st.lists(
    st.floats(min_value=0.001, max_value=10.0), min_size=1, max_size=20
)


@settings(max_examples=80, deadline=None)
@given(stage_times, st.booleans())
def test_resources_never_overlap(times, in_place):
    sched = simulate_pipeline(times, times, times, in_place)
    for getter in (
        lambda c: c.upload,
        lambda c: c.sort,
        lambda c: c.download,
    ):
        intervals = [getter(c) for c in sched.chunks]
        for a, b in zip(intervals, intervals[1:]):
            assert b.start >= a.end - 1e-12


@settings(max_examples=80, deadline=None)
@given(stage_times, st.booleans())
def test_stage_durations_preserved(times, in_place):
    sched = simulate_pipeline(times, times, times, in_place)
    for i, c in enumerate(sched.chunks):
        assert abs(c.upload.duration - times[i]) < 1e-9
        assert abs(c.sort.duration - times[i]) < 1e-9
        assert abs(c.download.duration - times[i]) < 1e-9


@settings(max_examples=80, deadline=None)
@given(stage_times, st.booleans())
def test_makespan_bounds(times, in_place):
    sched = simulate_pipeline(times, times, times, in_place)
    total = sum(times)
    # Never faster than the busiest resource, never slower than serial.
    assert sched.makespan >= total - 1e-9
    assert sched.makespan <= 3 * total + 1e-9


@settings(max_examples=60, deadline=None)
@given(stage_times)
def test_more_buffers_never_slower(times):
    # Relaxing the buffer constraint (four buffers instead of three) can
    # only move uploads earlier.  The in-place layout's advantage is not
    # schedule speed at equal chunk count — it is *larger chunks* for
    # the same device memory (§5), covered by the chunking tests.
    three_buffers = simulate_pipeline(times, times, times, True)
    four_buffers = simulate_pipeline(times, times, times, False)
    assert four_buffers.makespan <= three_buffers.makespan + 1e-9


@settings(max_examples=60, deadline=None)
@given(stage_times, st.booleans())
def test_buffer_constraint_holds(times, in_place):
    sched = simulate_pipeline(times, times, times, in_place)
    lag = 2 if in_place else 3
    for i in range(lag, len(times)):
        prior = sched.chunks[i - lag].download
        bound = prior.start if in_place else prior.end
        assert sched.chunks[i].upload.start >= bound - 1e-12


@settings(max_examples=40, deadline=None)
@given(
    st.floats(min_value=0.01, max_value=5.0),
    st.floats(min_value=0.0, max_value=1.0),
    st.integers(1, 20),
)
def test_analytic_bound_tracks_makespan_uniform_chunks(t, sort_frac, s):
    # The paper's closed form T_HtD/s + max(...) + T_DtH/s describes
    # equal-size chunks; for a transfer-bound pipeline the simulated
    # makespan stays within one chunk time of it.
    up = [t] * s
    sort = [t * sort_frac] * s
    sched = simulate_pipeline(up, sort, up, True)
    assert sched.makespan <= sched.analytic_bound() + t + 1e-9
