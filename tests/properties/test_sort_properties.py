"""Property-based tests: the hybrid sort against arbitrary inputs."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SortConfig
from repro.core.hybrid_sort import HybridRadixSorter

SMALL_CONFIG = SortConfig(
    key_bits=32,
    kpb=96,
    threads=32,
    kpt=3,
    local_threshold=128,
    merge_threshold=40,
    local_sort_configs=(16, 32, 64, 128),
)

uint32_arrays = st.lists(
    st.integers(0, 2**32 - 1), min_size=0, max_size=2000
).map(lambda xs: np.array(xs, dtype=np.uint32))

int32_arrays = st.lists(
    st.integers(-(2**31), 2**31 - 1), min_size=0, max_size=1000
).map(lambda xs: np.array(xs, dtype=np.int32))

float64_arrays = st.lists(
    st.floats(allow_nan=False, width=64), min_size=0, max_size=1000
).map(lambda xs: np.array(xs, dtype=np.float64))


@settings(max_examples=40, deadline=None)
@given(uint32_arrays)
def test_output_sorted_and_permutation(keys):
    result = HybridRadixSorter(config=SMALL_CONFIG).sort(keys)
    assert np.array_equal(result.keys, np.sort(keys))


@settings(max_examples=30, deadline=None)
@given(int32_arrays)
def test_signed_integers(keys):
    result = HybridRadixSorter().sort(keys)
    assert np.array_equal(result.keys, np.sort(keys))


@settings(max_examples=30, deadline=None)
@given(float64_arrays)
def test_floats(keys):
    result = HybridRadixSorter().sort(keys)
    assert np.array_equal(result.keys, np.sort(keys))


@settings(max_examples=25, deadline=None)
@given(uint32_arrays)
def test_idempotent(keys):
    sorter = HybridRadixSorter(config=SMALL_CONFIG)
    once = sorter.sort(keys).keys
    twice = HybridRadixSorter(config=SMALL_CONFIG).sort(once).keys
    assert np.array_equal(once, twice)


@settings(max_examples=25, deadline=None)
@given(uint32_arrays)
def test_values_form_permutation(keys):
    values = np.arange(keys.size, dtype=np.uint32)
    config = SortConfig(
        key_bits=32, value_bits=32, kpb=96, threads=32, kpt=3,
        local_threshold=128, merge_threshold=40,
        local_sort_configs=(16, 32, 64, 128),
    )
    result = HybridRadixSorter(config=config).sort(keys, values)
    assert np.array_equal(np.sort(result.values), values)
    assert np.array_equal(keys[result.values], result.keys)


@settings(max_examples=20, deadline=None)
@given(
    uint32_arrays,
    st.booleans(),
    st.booleans(),
    st.booleans(),
    st.booleans(),
)
def test_ablations_never_affect_correctness(
    keys, merging, multi, lookahead, reduction
):
    # Figures 11-14 switch optimisations off; the *result* must never
    # change, only the simulated time.
    config = SMALL_CONFIG.with_ablations(
        bucket_merging=merging,
        multi_config=multi,
        lookahead=lookahead,
        thread_reduction=reduction,
    )
    result = HybridRadixSorter(config=config).sort(keys)
    assert np.array_equal(result.keys, np.sort(keys))


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(0, 3), min_size=1, max_size=1500))
def test_tiny_alphabet(values):
    # Extremely low-cardinality inputs stress merging and skew paths.
    keys = np.array(values, dtype=np.uint32)
    result = HybridRadixSorter(config=SMALL_CONFIG).sort(keys)
    assert np.array_equal(result.keys, np.sort(keys))


@settings(max_examples=15, deadline=None)
@given(uint32_arrays)
def test_trace_key_conservation(keys):
    # Every key finishes exactly once: either a local sort claims it, or
    # it survives the final counting pass with all digits processed.
    result = HybridRadixSorter(config=SMALL_CONFIG).sort(keys)
    trace = result.trace
    if keys.size <= 1:
        return
    finished_by_counting = 0
    if trace.counting_passes:
        last = trace.counting_passes[-1]
        if last.pass_index == SMALL_CONFIG.num_digits - 1:
            locals_at_last = sum(
                t.total_keys
                for t in trace.local_sorts
                if t.pass_index == last.pass_index
            )
            finished_by_counting = last.n_keys - locals_at_last
    assert trace.total_local_keys + finished_by_counting == keys.size
