"""Property tests: the counting-sort fast paths vs the gather reference.

The fast engine dispatches between a sliced single-span path, a
span-coalesced loop, and a gathered fallback with narrow composite sort
keys.  Every path must be *bit-identical* to the seed implementation —
explicit ``positions`` gather, int64 composite key, stable argsort —
across dtypes, pair layouts, zero-size buckets, gaps between buckets,
and single-element inputs.  These tests implement that seed engine as an
independent reference and drive all paths against it.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.counting_sort as cs
from repro._util import (
    coalesce_spans,
    concatenated_aranges,
    segment_ids_from_sizes,
)
from repro.core.config import SortConfig
from repro.core.counting_sort import counting_sort_pass
from repro.core.digits import extract_digit
from repro.core.histogram import bucket_histograms

KEY_DTYPES = {
    8: np.uint8,
    16: np.uint16,
    32: np.uint32,
    64: np.uint64,
}


def _config(key_bits: int, digit_bits: int) -> SortConfig:
    return SortConfig(
        key_bits=key_bits,
        digit_bits=digit_bits,
        kpb=37,
        threads=32,
        kpt=2,
        local_threshold=64,
        merge_threshold=16,
        local_sort_configs=(64,),
    )


def reference_pass(src, offsets, sizes, config, digit_index, src_values=None):
    """The seed gather engine: positions gather, int64 key, argsort."""
    dst = np.zeros_like(src)
    dst_values = None if src_values is None else np.zeros_like(src_values)
    positions = np.repeat(offsets, sizes) + concatenated_aranges(sizes)
    active = src[positions]
    digits = extract_digit(active, config.geometry, digit_index)
    segments = segment_ids_from_sizes(sizes)
    counts = bucket_histograms(digits, segments, offsets.size, config.radix)
    order = np.argsort(segments * config.radix + digits, kind="stable")
    dst[positions] = active[order]
    if src_values is not None:
        dst_values[positions] = src_values[positions][order]
    return dst, dst_values, counts


def run_fast(src, offsets, sizes, config, digit_index, src_values=None,
             force_gather=False, force=None):
    """Run the fast engine, optionally forcing one dispatch path.

    ``force`` selects: ``"gather"`` (the one-shot fallback),
    ``"per_bucket"`` (cache-sized bucket slices for any bucket size), or
    ``"chunked"`` (the chunked counting scatter with tiny chunks).
    ``force_gather=True`` is the legacy spelling of ``force="gather"``.
    """
    if force_gather:
        force = "gather"
    dst = np.zeros_like(src)
    dst_values = None if src_values is None else np.zeros_like(src_values)
    saved = (
        cs._SPAN_LOOP_MIN,
        cs._SPAN_KEY_RATIO,
        cs._PER_BUCKET_MIN,
        cs._CHUNKED_MIN,
        cs._CHUNK_TARGET,
    )
    if force == "gather":
        cs._SPAN_LOOP_MIN, cs._SPAN_KEY_RATIO = -1, 1 << 62
    elif force == "per_bucket":
        cs._PER_BUCKET_MIN = 0
    elif force == "chunked":
        cs._PER_BUCKET_MIN, cs._CHUNKED_MIN, cs._CHUNK_TARGET = 0, 2, 3
    try:
        out = counting_sort_pass(
            src, dst, offsets, sizes, config, digit_index,
            src_values=src_values, dst_values=dst_values,
        )
    finally:
        (cs._SPAN_LOOP_MIN, cs._SPAN_KEY_RATIO, cs._PER_BUCKET_MIN,
         cs._CHUNKED_MIN, cs._CHUNK_TARGET) = saved
    return dst, dst_values, out


@st.composite
def bucket_layouts(draw):
    """Random bucket layouts: gaps, zero sizes, adjacency mixes."""
    pieces = draw(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 25)),
            min_size=1,
            max_size=12,
        )
    )
    offsets, sizes = [], []
    cursor = 0
    for gap, size in pieces:
        cursor += gap
        offsets.append(cursor)
        sizes.append(size)
        cursor += size
    tail_gap = draw(st.integers(0, 3))
    return (
        np.array(offsets, dtype=np.int64),
        np.array(sizes, dtype=np.int64),
        cursor + tail_gap,
    )


@st.composite
def pass_inputs(draw):
    key_bits = draw(st.sampled_from(sorted(KEY_DTYPES)))
    digit_bits = draw(st.integers(2, min(8, key_bits)))
    config = _config(key_bits, digit_bits)
    digit_index = draw(st.integers(0, config.num_digits - 1))
    offsets, sizes, total = draw(bucket_layouts())
    dtype = KEY_DTYPES[key_bits]
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    src = rng.integers(0, 2**key_bits, size=total, dtype=np.uint64).astype(
        dtype
    )
    pairs = draw(st.booleans())
    values = (
        np.arange(total, dtype=np.uint32) if pairs else None
    )
    return src, offsets, sizes, config, digit_index, values


@settings(max_examples=120, deadline=None)
@given(pass_inputs())
def test_span_paths_bit_identical_to_reference(inputs):
    src, offsets, sizes, config, digit_index, values = inputs
    ref_dst, ref_vals, ref_counts = reference_pass(
        src, offsets, sizes, config, digit_index, src_values=values
    )
    dst, dst_vals, out = run_fast(
        src, offsets, sizes, config, digit_index, src_values=values
    )
    assert np.array_equal(dst, ref_dst)
    assert np.array_equal(out.counts, ref_counts)
    if values is not None:
        assert np.array_equal(dst_vals, ref_vals)


@settings(max_examples=60, deadline=None)
@given(pass_inputs())
def test_gathered_fallback_bit_identical_to_reference(inputs):
    src, offsets, sizes, config, digit_index, values = inputs
    ref_dst, ref_vals, ref_counts = reference_pass(
        src, offsets, sizes, config, digit_index, src_values=values
    )
    dst, dst_vals, out = run_fast(
        src, offsets, sizes, config, digit_index,
        src_values=values, force_gather=True,
    )
    assert np.array_equal(dst, ref_dst)
    assert np.array_equal(out.counts, ref_counts)
    if values is not None:
        assert np.array_equal(dst_vals, ref_vals)


@settings(max_examples=60, deadline=None)
@given(pass_inputs())
def test_per_bucket_path_bit_identical_to_reference(inputs):
    src, offsets, sizes, config, digit_index, values = inputs
    ref_dst, ref_vals, ref_counts = reference_pass(
        src, offsets, sizes, config, digit_index, src_values=values
    )
    dst, dst_vals, out = run_fast(
        src, offsets, sizes, config, digit_index,
        src_values=values, force="per_bucket",
    )
    assert np.array_equal(dst, ref_dst)
    assert np.array_equal(out.counts, ref_counts)
    if values is not None:
        assert np.array_equal(dst_vals, ref_vals)


@settings(max_examples=60, deadline=None)
@given(pass_inputs())
def test_chunked_path_bit_identical_to_reference(inputs):
    src, offsets, sizes, config, digit_index, values = inputs
    ref_dst, ref_vals, ref_counts = reference_pass(
        src, offsets, sizes, config, digit_index, src_values=values
    )
    dst, dst_vals, out = run_fast(
        src, offsets, sizes, config, digit_index,
        src_values=values, force="chunked",
    )
    assert np.array_equal(dst, ref_dst)
    assert np.array_equal(out.counts, ref_counts)
    if values is not None:
        assert np.array_equal(dst_vals, ref_vals)


@settings(max_examples=60, deadline=None)
@given(pass_inputs())
def test_span_and_gather_paths_agree(inputs):
    src, offsets, sizes, config, digit_index, values = inputs
    a_dst, a_vals, a_out = run_fast(
        src, offsets, sizes, config, digit_index, src_values=values
    )
    b_dst, b_vals, b_out = run_fast(
        src, offsets, sizes, config, digit_index,
        src_values=values, force_gather=True,
    )
    assert np.array_equal(a_dst, b_dst)
    assert np.array_equal(a_out.counts, b_out.counts)
    if values is not None:
        assert np.array_equal(a_vals, b_vals)


class TestPathDispatch:
    """Deterministic probes of each dispatch branch."""

    def test_single_bucket_is_one_span(self):
        offsets = np.array([0], dtype=np.int64)
        sizes = np.array([500], dtype=np.int64)
        starts, stops, lo, hi = coalesce_spans(offsets, sizes)
        assert starts.tolist() == [0] and stops.tolist() == [500]

    def test_adjacent_buckets_coalesce(self):
        offsets = np.array([0, 100, 350], dtype=np.int64)
        sizes = np.array([100, 250, 50], dtype=np.int64)
        starts, stops, lo, hi = coalesce_spans(offsets, sizes)
        assert starts.tolist() == [0] and stops.tolist() == [400]
        assert lo.tolist() == [0] and hi.tolist() == [2]

    def test_zero_size_buckets_do_not_break_spans(self):
        offsets = np.array([0, 40, 40, 90], dtype=np.int64)
        sizes = np.array([40, 0, 50, 10], dtype=np.int64)
        starts, stops, lo, hi = coalesce_spans(offsets, sizes)
        assert starts.tolist() == [0] and stops.tolist() == [100]

    def test_gap_starts_new_span(self):
        offsets = np.array([0, 60], dtype=np.int64)
        sizes = np.array([50, 20], dtype=np.int64)
        starts, stops, _, _ = coalesce_spans(offsets, sizes)
        assert starts.tolist() == [0, 60]
        assert stops.tolist() == [50, 80]

    def test_many_tiny_buckets_take_gather_path(self, rng):
        # 100 one-key buckets with gaps → more spans than the loop cap,
        # so the gathered fallback runs; output still matches reference.
        config = _config(32, 8)
        n_buckets = 100
        offsets = np.arange(n_buckets, dtype=np.int64) * 2
        sizes = np.ones(n_buckets, dtype=np.int64)
        src = rng.integers(0, 2**32, n_buckets * 2, dtype=np.uint64).astype(
            np.uint32
        )
        ref_dst, _, ref_counts = reference_pass(src, offsets, sizes, config, 0)
        dst, _, out = run_fast(src, offsets, sizes, config, 0)
        assert np.array_equal(dst, ref_dst)
        assert np.array_equal(out.counts, ref_counts)

    def test_narrow_dtype_overflow_boundary(self, rng):
        # 300 buckets × radix 256 pushes the composite key past uint16;
        # the engine must widen to uint32 and still match the reference.
        config = _config(32, 8)
        n_buckets = 300
        offsets = np.arange(n_buckets, dtype=np.int64) * 3
        sizes = np.full(n_buckets, 3, dtype=np.int64)
        src = rng.integers(
            0, 2**32, n_buckets * 3, dtype=np.uint64
        ).astype(np.uint32)
        values = np.arange(src.size, dtype=np.uint32)
        ref_dst, ref_vals, ref_counts = reference_pass(
            src, offsets, sizes, config, 1, src_values=values
        )
        dst, dst_vals, out = run_fast(
            src, offsets, sizes, config, 1,
            src_values=values, force_gather=True,
        )
        assert np.array_equal(dst, ref_dst)
        assert np.array_equal(dst_vals, ref_vals)
        assert np.array_equal(out.counts, ref_counts)

    def test_narrow_dtype_overflow_boundary_span_path(self, rng):
        # Same 300-bucket layout, but adjacent buckets: one span whose
        # local composite key also exceeds uint16.  The span loop must
        # widen identically.
        config = _config(32, 8)
        n_buckets = 300
        sizes = np.full(n_buckets, 3, dtype=np.int64)
        offsets = np.concatenate(([0], np.cumsum(sizes)[:-1]))
        src = rng.integers(
            0, 2**32, n_buckets * 3, dtype=np.uint64
        ).astype(np.uint32)
        ref_dst, _, ref_counts = reference_pass(src, offsets, sizes, config, 1)
        dst, _, out = run_fast(src, offsets, sizes, config, 1)
        assert np.array_equal(dst, ref_dst)
        assert np.array_equal(out.counts, ref_counts)

    def test_single_element_input(self):
        config = _config(32, 8)
        src = np.array([42], dtype=np.uint32)
        offsets = np.array([0], dtype=np.int64)
        sizes = np.array([1], dtype=np.int64)
        dst, _, out = run_fast(src, offsets, sizes, config, 0)
        assert dst.tolist() == [42]
        assert out.counts.sum() == 1
