"""Property tests for the external sorter and its streaming merge.

Two families of properties:

* **merge-level** — :func:`repro.external.merge.merge_runs` over
  arbitrary sorted runs, block sizes down to one record, and
  duplicate-heavy keys must equal the in-memory stable k-way merge
  (equal keys in run order), regardless of where block boundaries fall
  inside runs of equal keys.
* **sorter-level** — the full spill-to-disk pipeline over arbitrary
  inputs and budgets must be byte-identical to one in-memory stable
  sort, i.e. run boundaries are invisible in the output.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.external import ExternalSorter, FileLayout, write_records, write_run
from repro.external.merge import merge_runs
from repro.hetero.merge import kway_merge_pairs

# Keys drawn from a tiny alphabet force long runs of equal keys that
# straddle block boundaries — the hard case for a bounded-buffer merge.
tiny_keys = st.lists(st.integers(0, 7), min_size=0, max_size=80)
run_sets = st.lists(tiny_keys, min_size=1, max_size=6)


def _write_runs(tmpdir, layout, runs):
    paths = []
    for i, (keys, values) in enumerate(runs):
        path = os.path.join(tmpdir, f"run-{i:05d}.bin")
        write_run(path, layout.to_records(keys, values))
        paths.append(path)
    return paths


@settings(max_examples=50, deadline=None)
@given(runs=run_sets, block=st.integers(1, 17))
def test_streaming_merge_equals_in_memory_stable_merge(
    tmp_path_factory, runs, block
):
    """Any block size reproduces the stable in-memory k-way merge."""
    tmpdir = str(tmp_path_factory.mktemp("merge"))
    layout = FileLayout(np.uint32, np.uint32)
    key_runs, value_runs, prepared = [], [], []
    offset = 0
    for r in runs:
        keys = np.sort(np.array(r, dtype=np.uint32))
        values = np.arange(offset, offset + keys.size, dtype=np.uint32)
        offset += keys.size
        key_runs.append(keys)
        value_runs.append(values)
        prepared.append((keys, values))
    paths = _write_runs(tmpdir, layout, prepared)
    out = os.path.join(tmpdir, "out.bin")
    written = merge_runs(paths, layout, out, block_records=block)
    expected_k, expected_v = kway_merge_pairs(key_runs, value_runs)
    got = np.fromfile(out, dtype=layout.storage_dtype)
    assert written == got.size == expected_k.size
    assert np.array_equal(got["key"], expected_k)
    # Equal keys must preserve run order — the stability contract.
    assert np.array_equal(got["value"], expected_v)


@settings(max_examples=30, deadline=None)
@given(
    keys=st.lists(st.integers(0, 30), min_size=1, max_size=400),
    budget_records=st.integers(6, 60),
    workers=st.sampled_from([1, 2]),
)
def test_external_sort_equals_global_stable_sort(
    tmp_path_factory, keys, budget_records, workers
):
    """Run boundaries are invisible: output = one global stable sort."""
    tmpdir = str(tmp_path_factory.mktemp("ext"))
    layout = FileLayout(np.uint32, np.uint32)
    keys = np.array(keys, dtype=np.uint32)
    values = np.arange(keys.size, dtype=np.uint32)
    inp = os.path.join(tmpdir, "in.bin")
    out = os.path.join(tmpdir, "out.bin")
    write_records(inp, layout.to_records(keys, values))
    sorter = ExternalSorter(
        memory_budget=budget_records * layout.record_bytes,
        workers=workers,
    )
    sorter.sort_file(inp, out, layout)
    got = np.fromfile(out, dtype=layout.storage_dtype)
    order = np.argsort(keys, kind="stable")
    assert np.array_equal(got["key"], keys[order])
    assert np.array_equal(got["value"], values[order])


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(0, 300),
    budget_records=st.integers(6, 50),
)
def test_external_sort_floats_match_in_memory_engine(
    tmp_path_factory, n, budget_records
):
    """Float keys (negatives, zeros) match the in-memory hybrid sort.

    The oracle is the hybrid engine itself (bit-pattern total order:
    ``-0.0`` before ``+0.0``), compared byte-for-byte.
    """
    from repro.core.hybrid_sort import HybridRadixSorter

    tmpdir = str(tmp_path_factory.mktemp("extf"))
    rng = np.random.default_rng(n * 1000 + budget_records)
    keys = rng.standard_normal(n).astype(np.float32)
    if n > 2:
        keys[0], keys[1] = -0.0, 0.0
    layout = FileLayout(np.float32)
    inp = os.path.join(tmpdir, "in.bin")
    out = os.path.join(tmpdir, "out.bin")
    write_records(inp, keys)
    ExternalSorter(memory_budget=budget_records * 4).sort_file(
        inp, out, layout
    )
    with open(out, "rb") as fh:
        got = fh.read()
    assert got == HybridRadixSorter().sort(keys).keys.tobytes()


@pytest.mark.parametrize("block", [1, 2, 3, 1000])
def test_equal_run_straddles_many_blocks(tmp_path, block):
    """One key repeated across every block boundary stays in run order."""
    layout = FileLayout(np.uint32, np.uint32)
    runs = []
    offset = 0
    for size in (7, 11, 5):
        keys = np.full(size, 42, dtype=np.uint32)
        values = np.arange(offset, offset + size, dtype=np.uint32)
        offset += size
        runs.append((keys, values))
    paths = _write_runs(str(tmp_path), layout, runs)
    out = tmp_path / "out.bin"
    merge_runs(paths, layout, out, block_records=block)
    got = np.fromfile(out, dtype=layout.storage_dtype)
    assert np.array_equal(got["value"], np.arange(23, dtype=np.uint32))
