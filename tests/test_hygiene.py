"""Repository hygiene: no bytecode artifacts tracked or orphaned.

Compiled ``.pyc`` files under ``tests/`` once slipped into the tree as
stray ``__pycache__`` directories; a tracked or orphaned artifact is
invisible until it shadows a renamed module or confuses a reviewer.
These checks keep the failure loud:

* nothing ``git`` tracks may be a ``.pyc`` or live under
  ``__pycache__``;
* every ``.pyc`` present on disk under ``tests/`` must correspond to a
  source ``.py`` that still exists (an *orphan* means its module was
  deleted or renamed and the cache outlived it).
"""

from __future__ import annotations

import subprocess
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]


def _tracked_files() -> list[str]:
    try:
        proc = subprocess.run(
            ["git", "ls-files"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        )
    except (OSError, subprocess.CalledProcessError):  # pragma: no cover
        pytest.skip("not a git checkout (or git unavailable)")
    return proc.stdout.splitlines()


def test_no_bytecode_is_tracked():
    tracked = [
        path
        for path in _tracked_files()
        if path.endswith(".pyc") or "__pycache__" in path.split("/")
    ]
    assert not tracked, (
        "bytecode artifacts are committed; `git rm -r --cached` them: "
        f"{tracked}"
    )


def test_no_orphaned_bytecode_under_tests():
    orphans = []
    for pyc in (REPO_ROOT / "tests").rglob("*.pyc"):
        # CPython caches tests/foo.py as tests/__pycache__/foo.cpython-XY.pyc.
        module = pyc.name.split(".", 1)[0]
        source_dir = (
            pyc.parent.parent if pyc.parent.name == "__pycache__" else pyc.parent
        )
        if not (source_dir / f"{module}.py").exists():
            orphans.append(str(pyc.relative_to(REPO_ROOT)))
    assert not orphans, (
        "orphaned .pyc files under tests/ (their source .py is gone); "
        f"delete them: {orphans}"
    )
