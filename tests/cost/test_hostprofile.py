"""Tests for host profiles: probes, persistence, and the forgiving loader."""

from __future__ import annotations

import json
import os
import warnings

import numpy as np
import pytest

from repro.cost.hostprofile import (
    PROBE_LAYOUTS,
    PROFILE_SCHEMA,
    HostProfile,
    ProfileError,
    default_profile_path,
    layout_key,
    load_host_profile,
    probe_counting_scatter,
    probe_external,
    probe_local_sort,
    probe_native,
    probe_pack,
    probe_thread_scaling,
    profile_fingerprint,
    run_probes,
    save_profile,
)


def profile_doc(**overrides) -> dict:
    """A small, valid, fully synthetic profile document."""
    doc = {
        "schema": PROFILE_SCHEMA,
        "created": 123.0,
        "host": {
            "platform": "test-host",
            "machine": "test",
            "python": "3.12",
            "numpy": "2.0",
            "cpu_count": 8,
        },
        "probes": {"n": 1024, "repeats": 1, "quick": True, "seed": 1},
        "counting_bandwidth": {
            "32/0": 1.0e8, "64/0": 8.0e7, "32/32": 6.0e7, "64/64": 5.0e7,
        },
        "native_bandwidth": {"32/0": 4.0e8},
        "local_sort_keys_per_s": 1.0e7,
        "pack_bandwidth": 1.0e9,
        "spill_bandwidth": 5.0e7,
        "merge_bandwidth": 1.0e8,
        "thread_speedup": {"1": 1.0, "2": 1.6},
        "shard_speedup": {"1": 1.0, "2": 1.2},
    }
    doc.update(overrides)
    return doc


class TestProfileObject:
    def test_round_trip_from_dict_to_dict(self):
        doc = profile_doc()
        profile = HostProfile.from_dict(doc)
        assert profile.cpu_count == 8
        assert profile.counting_bandwidth["32/0"] == 1.0e8
        assert HostProfile.from_dict(profile.to_dict()) == profile

    def test_wrong_schema_rejected(self):
        with pytest.raises(ProfileError, match="schema"):
            HostProfile.from_dict(profile_doc(schema=99))

    def test_missing_field_rejected(self):
        doc = profile_doc()
        del doc["merge_bandwidth"]
        with pytest.raises(ProfileError, match="merge_bandwidth"):
            HostProfile.from_dict(doc)

    def test_non_positive_rates_rejected(self):
        with pytest.raises(ProfileError):
            HostProfile.from_dict(profile_doc(local_sort_keys_per_s=0))
        with pytest.raises(ProfileError):
            HostProfile.from_dict(
                profile_doc(counting_bandwidth={"32/0": -1.0})
            )

    def test_empty_counting_table_rejected(self):
        with pytest.raises(ProfileError, match="counting_bandwidth"):
            HostProfile.from_dict(profile_doc(counting_bandwidth={}))

    def test_not_an_object_rejected(self):
        with pytest.raises(ProfileError):
            HostProfile.from_dict(["not", "a", "mapping"])

    def test_unknown_fields_survive_as_extras(self):
        profile = HostProfile.from_dict(profile_doc(future_field=42))
        assert profile.extras["future_field"] == 42
        assert profile.to_dict()["future_field"] == 42

    def test_layout_key(self):
        assert layout_key(32, 0) == "32/0"
        assert layout_key(64, 32) == "64/32"


class TestFingerprint:
    def test_stable_and_order_independent(self):
        doc = profile_doc()
        reordered = dict(reversed(list(doc.items())))
        assert profile_fingerprint(doc) == profile_fingerprint(reordered)
        assert profile_fingerprint(doc).startswith("hp-")

    def test_ignores_embedded_fingerprint(self):
        doc = profile_doc()
        stamped = profile_doc(fingerprint="hp-whatever")
        assert profile_fingerprint(doc) == profile_fingerprint(stamped)

    def test_content_sensitive(self):
        assert profile_fingerprint(profile_doc()) != profile_fingerprint(
            profile_doc(pack_bandwidth=2.0e9)
        )


class TestPersistence:
    def test_save_then_load_round_trips(self, tmp_path):
        path = tmp_path / "profile.json"
        fingerprint = save_profile(profile_doc(), path)
        profile = load_host_profile(path)
        assert profile is not None
        assert profile.fingerprint == fingerprint
        assert profile.pack_bandwidth == 1.0e9
        # The file itself embeds the same fingerprint.
        on_disk = json.loads(path.read_text())
        assert on_disk["fingerprint"] == fingerprint

    def test_save_refuses_invalid_document(self, tmp_path):
        path = tmp_path / "profile.json"
        with pytest.raises(ProfileError):
            save_profile(profile_doc(merge_bandwidth=0), path)
        assert not path.exists()

    def test_save_leaves_no_temp_droppings(self, tmp_path):
        save_profile(profile_doc(), tmp_path / "profile.json")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["profile.json"]

    def test_missing_file_is_silent_none(self, tmp_path):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert load_host_profile(tmp_path / "nope.json") is None

    def test_corrupt_file_warns_once_then_falls_back(self, tmp_path):
        path = tmp_path / "corrupt.json"
        path.write_text("{ this is not json")
        with pytest.warns(UserWarning, match="falling back"):
            assert load_host_profile(path) is None
        # Second load of the same path: still None, but no second warning.
        path.write_text("{ still not json!! ")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert load_host_profile(path) is None

    def test_partial_file_warns_and_falls_back(self, tmp_path):
        doc = profile_doc()
        del doc["counting_bandwidth"]
        path = tmp_path / "partial.json"
        path.write_text(json.dumps(doc))
        with pytest.warns(UserWarning, match="paper-anchored"):
            assert load_host_profile(path) is None

    def test_env_var_overrides_default_path(self, monkeypatch, tmp_path):
        target = tmp_path / "elsewhere" / "profile.json"
        monkeypatch.setenv("REPRO_HOST_PROFILE", str(target))
        assert default_profile_path() == str(target)
        save_profile(profile_doc(), default_profile_path())
        assert load_host_profile() is not None

    def test_default_path_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_HOST_PROFILE", raising=False)
        path = default_profile_path()
        assert path.endswith(os.path.join(".cache", "repro-host-profile.json"))

    def test_rewrite_invalidates_load_cache(self, tmp_path):
        path = tmp_path / "profile.json"
        save_profile(profile_doc(), path)
        first = load_host_profile(path)
        save_profile(profile_doc(pack_bandwidth=2.0e9), path)
        second = load_host_profile(path)
        assert first.pack_bandwidth == 1.0e9
        assert second.pack_bandwidth == 2.0e9
        assert first.fingerprint != second.fingerprint


class TestProbes:
    """Each probe's output schema, at tiny sizes (speed over precision)."""

    N = 1024

    def test_counting_scatter_covers_every_layout(self, rng):
        out = probe_counting_scatter(self.N, 1, rng)
        table = out["counting_bandwidth"]
        assert set(table) == {layout_key(k, v) for k, v in PROBE_LAYOUTS}
        assert all(bw > 0 for bw in table.values())

    def test_native_probe_schema(self, rng):
        from repro.native.build import native_status

        out = probe_native(self.N, 1, rng)
        table = out["native_bandwidth"]
        if native_status(warn=False).available:
            assert set(table) == {
                layout_key(k, v) for k, v in PROBE_LAYOUTS
            }
            assert all(bw > 0 for bw in table.values())
        else:
            assert table == {}

    def test_local_sort_probe(self, rng):
        out = probe_local_sort(self.N, 1, rng)
        assert out["local_sort_keys_per_s"] > 0

    def test_pack_probe(self, rng):
        out = probe_pack(self.N, 1, rng)
        assert out["pack_bandwidth"] > 0

    def test_external_probe(self, rng):
        out = probe_external(self.N, 1, rng)
        assert out["spill_bandwidth"] > 0
        assert out["merge_bandwidth"] > 0

    def test_thread_probe(self, rng):
        out = probe_thread_scaling(self.N, 1, rng)
        assert out["thread_speedup"]["1"] == 1.0
        assert out["thread_speedup"]["2"] > 0


class TestRunProbes:
    def test_document_validates_and_persists(self, tmp_path):
        doc = run_probes(1024, 1, quick=True, seed=7, timestamp=42.0)
        assert doc["schema"] == PROFILE_SCHEMA
        assert doc["created"] == 42.0
        assert doc["probes"] == {
            "n": 1024, "repeats": 1, "quick": True, "seed": 7,
        }
        assert doc["host"]["cpu_count"] >= 1
        fingerprint = save_profile(doc, tmp_path / "p.json")
        profile = load_host_profile(tmp_path / "p.json")
        assert profile is not None and profile.fingerprint == fingerprint

    def test_tiny_n_clamped(self):
        doc = run_probes(3, 1, quick=True, timestamp=0.0)
        assert doc["probes"]["n"] == 1024

    def test_probe_arrays_deterministic_per_seed(self):
        from repro.cost.hostprofile import _probe_arrays

        a, _ = _probe_arrays(np.random.default_rng(5), 256, 32, 0)
        b, _ = _probe_arrays(np.random.default_rng(5), 256, 32, 0)
        assert np.array_equal(a, b)
        assert a.dtype == np.uint32
