"""Tests for the measured-feedback loop (EWMA blending into plans)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cost.feedback import CostFeedback
from repro.plan import InputDescriptor, Planner

SIG = ("sig", 1)


def make_plan(n=4_000_000):
    descriptor = InputDescriptor(n=n, key_dtype=np.uint32)
    return Planner(native="never", profile=None).plan(descriptor), descriptor


class TestRecording:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            CostFeedback(smoothing=0.0)
        with pytest.raises(ValueError):
            CostFeedback(smoothing=1.5)
        with pytest.raises(ValueError):
            CostFeedback(confidence=0.0)

    def test_observe_counts_and_versions(self):
        feedback = CostFeedback()
        assert feedback.observations(SIG) == 0
        assert feedback.version(SIG) == 0
        feedback.observe(SIG, 0.5)
        feedback.observe(SIG, 0.7)
        assert feedback.observations(SIG) == 2
        assert feedback.version(SIG) == 2
        assert len(feedback) == 1

    def test_non_positive_measurements_ignored(self):
        feedback = CostFeedback()
        feedback.observe(SIG, 0.0)
        feedback.observe(SIG, -1.0)
        assert feedback.observations(SIG) == 0

    def test_to_dict_snapshot(self):
        feedback = CostFeedback()
        feedback.observe(SIG, 0.5)
        feedback.observe(("other",), 0.1)
        snap = feedback.to_dict()
        assert snap["signatures"] == 2
        assert snap["observations"] == 2
        assert {tuple(e["signature"]) for e in snap["entries"]} == {
            SIG, ("other",),
        }


class TestBlending:
    def test_no_history_returns_prediction(self):
        assert CostFeedback().estimate(SIG, 3.0) == 3.0

    def test_estimate_moves_monotonically_toward_measured(self):
        """More observations of a stable workload → strictly closer to
        the measured value; a handful of requests reaches ≤2× error."""
        feedback = CostFeedback()
        predicted, measured = 10.0, 1.0
        errors = []
        for _ in range(30):
            feedback.observe(SIG, measured)
            estimate = feedback.estimate(SIG, predicted)
            errors.append(estimate / measured)
        assert all(a > b for a, b in zip(errors, errors[1:]))
        assert errors[-1] < 2.0
        # ... and from the other side (model under-predicts).
        under = CostFeedback()
        for _ in range(8):
            under.observe(SIG, 5.0)
        assert 2.5 < under.estimate(SIG, 0.001) <= 5.0

    def test_ewma_tracks_drifting_measurements(self):
        feedback = CostFeedback(smoothing=0.5)
        for seconds in (1.0, 1.0, 3.0):
            feedback.observe(SIG, seconds)
        # EWMA walks 1.0 → 1.0 → 2.0 under 0.5 smoothing, and three
        # observations weigh it at 3 / (3 + 3) = ½ against a zero
        # prediction.
        assert feedback.estimate(SIG, 0.0) == pytest.approx(1.0)


class TestApply:
    def test_unobserved_signature_leaves_plan_untouched(self):
        plan, descriptor = make_plan()
        feedback = CostFeedback()
        assert feedback.apply(plan, descriptor.signature()) is plan

    def test_apply_reprices_and_rebrands(self):
        plan, descriptor = make_plan()
        signature = descriptor.signature()
        feedback = CostFeedback()
        measured = plan.predicted_seconds * 10
        for _ in range(4):
            feedback.observe(signature, measured)
        adjusted = feedback.apply(plan, signature)
        assert adjusted.cost_source == "measured-feedback"
        assert adjusted.strategy == plan.strategy
        assert [s.kind for s in adjusted.steps] == [
            s.kind for s in plan.steps
        ]
        assert adjusted.predicted_seconds == pytest.approx(
            feedback.estimate(signature, plan.predicted_seconds)
        )
        # Step costs scale proportionally; traffic is untouched.
        assert adjusted.bytes_moved == plan.bytes_moved

    def test_planner_applies_feedback_on_plan(self):
        _, descriptor = make_plan()
        feedback = CostFeedback()
        planner = Planner(native="never", profile=None, feedback=feedback)
        baseline = planner.plan(descriptor)
        assert baseline.cost_source == "paper-analytical"
        feedback.observe(descriptor.signature(), 1.25)
        replanned = planner.plan(descriptor)
        assert replanned.cost_source == "measured-feedback"
        assert replanned.predicted_seconds > baseline.predicted_seconds
