"""Tests for :class:`HostCostModel` pricing over a synthetic profile."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cost.hostmodel import HostCostModel
from repro.cost.hostprofile import PROFILE_SCHEMA, HostProfile
from repro.plan import InputDescriptor


def profile_doc(**overrides) -> dict:
    """A synthetic profile with round constants, easy to price by hand."""
    doc = {
        "schema": PROFILE_SCHEMA,
        "created": 123.0,
        "host": {"platform": "test", "cpu_count": 8},
        "probes": {"n": 1024, "repeats": 1, "quick": True, "seed": 1},
        "counting_bandwidth": {
            "32/0": 1.0e8, "64/0": 8.0e7, "32/32": 6.0e7, "64/64": 5.0e7,
        },
        "native_bandwidth": {"32/0": 4.0e8},
        "local_sort_keys_per_s": 1.0e7,
        "pack_bandwidth": 1.0e9,
        "spill_bandwidth": 5.0e7,
        "merge_bandwidth": 1.0e8,
        "thread_speedup": {"1": 1.0, "2": 1.6},
        "shard_speedup": {"1": 1.0, "2": 1.2},
    }
    doc.update(overrides)
    return doc


@pytest.fixture
def model() -> HostCostModel:
    return HostCostModel(HostProfile.from_dict(profile_doc()))


def descriptor(n=1 << 20, key_dtype=np.uint32, value_dtype=None, workers=1):
    return InputDescriptor(
        n=n, key_dtype=key_dtype, value_dtype=value_dtype, workers=workers
    )


class TestBandwidthLookup:
    def test_exact_layout(self, model):
        assert model.counting_bandwidth(32, 0) == 1.0e8
        assert model.counting_bandwidth(64, 64) == 5.0e7

    def test_unprobed_layout_falls_back_to_slowest_rate(self, model):
        # 64/32 (12-byte records) was never probed and no probed layout
        # shares its record width → the conservative minimum applies.
        assert model.counting_bandwidth(64, 32) == 5.0e7

    def test_counting_seconds_is_exact_division(self, model):
        desc = descriptor()
        assert model.counting_seconds(desc, 4.0e8) == pytest.approx(
            4.0e8 / 1.0e8
        )

    def test_native_falls_back_to_counting_when_unprobed(self, model):
        # The synthetic profile probed native only for 32/0.
        desc32 = descriptor()
        assert model.native_seconds(desc32, 4.0e8) == pytest.approx(1.0)
        profile = HostProfile.from_dict(profile_doc(native_bandwidth={}))
        empty = HostCostModel(profile)
        assert empty.native_seconds(desc32, 4.0e8) == pytest.approx(
            empty.counting_seconds(desc32, 4.0e8)
        )


class TestStepPricing:
    def test_local_sort_rate(self, model):
        assert model.local_sort_seconds(1.0e7) == pytest.approx(1.0)
        assert model.local_sort_seconds(0) > 0  # degenerate, never 0/0

    def test_spill_and_streaming_merge(self, model):
        assert model.spill_seconds(5.0e7) == pytest.approx(2.0)
        assert model.external_merge_seconds(1.0e8) == pytest.approx(2.0)

    def test_merge_passes_grow_logarithmically(self, model):
        one = model.merge_seconds(1.0e8, n_runs=1)
        four = model.merge_seconds(1.0e8, n_runs=4)
        sixteen = model.merge_seconds(1.0e8, n_runs=16)
        assert one == pytest.approx(2.0)  # one streaming pass
        assert four == pytest.approx(one)  # ≤ merge width: still one
        assert sixteen == pytest.approx(2 * one)  # ceil(log₄ 16) = 2


class TestSpeedups:
    def test_measured_point_used_exactly(self, model):
        assert model.thread_speedup(1) == 1.0
        assert model.thread_speedup(2) == 1.6
        assert model.shard_speedup(2) == 1.2

    def test_extrapolation_scales_measured_efficiency(self, model):
        # ×2 measured at 1.6 → efficiency 0.8; 4 workers on an 8-CPU
        # host extrapolate to 4 × 0.8.
        assert model.thread_speedup(4) == pytest.approx(3.2)

    def test_extrapolation_caps_at_cpu_count(self, model):
        # 64 requested workers on an 8-CPU host: only 8 are usable.
        assert model.thread_speedup(64) == pytest.approx(8 * 0.8)

    def test_workers_discount_counting_seconds(self, model):
        slow = model.counting_seconds(descriptor(workers=1), 1.0e8)
        fast = model.counting_seconds(descriptor(workers=2), 1.0e8)
        assert fast == pytest.approx(slow / 1.6)
