"""Tests for the cost model and its calibration anchors."""

from __future__ import annotations

import pytest

from repro.core.config import SortConfig
from repro.cost.model import CostModel, LSDCostPreset, MergeSortCostPreset
from repro.types import BlockStats, CountingPassTrace, SortTrace
from repro.workloads import constant_keys, uniform_keys


def _pass_trace(n=10**6, conflict=2.0, hist_ops=1.0, scatter_ops=1.0,
                skew=0.0, key_bytes=4, value_bytes=0, blocks=None,
                nonempty=200.0):
    blocks = blocks if blocks is not None else max(1, n // 6912)
    return CountingPassTrace(
        pass_index=0,
        n_keys=n,
        n_buckets_in=1,
        n_blocks=blocks,
        n_subbuckets_nonempty=256,
        n_merged_buckets=0,
        n_local_buckets=0,
        n_next_buckets=256,
        block_stats=BlockStats(
            warp_conflict=conflict,
            hist_ops_per_key=hist_ops,
            scatter_ops_per_key=scatter_ops,
            lookahead_active_fraction=1.0 if skew > 0.5 else 0.0,
            max_digit_fraction=skew,
        ),
        key_bytes=key_bytes,
        value_bytes=value_bytes,
        avg_nonempty_per_block=nonempty,
    )


def _trace(passes, n=10**6, key_bits=32):
    return SortTrace(
        n=n,
        key_bits=key_bits,
        value_bits=0,
        counting_passes=tuple(passes),
        local_sorts=(),
        finished_early=False,
        final_buffer_index=0,
    )


class TestHybridPricing:
    def test_uniform_pass_is_bandwidth_bound(self):
        model = CostModel()
        config = SortConfig.for_keys(32)
        n = 10**8
        t = model.price_hybrid(_trace([_pass_trace(n=n)], n=n), config)
        bw_floor = (3 * n * 4) / model.spec.effective_bandwidth
        assert t.total >= bw_floor
        # At scale, overheads stay a small fraction of the memory time.
        assert t.total <= 1.5 * bw_floor

    def test_serialised_histogram_slower(self):
        model = CostModel()
        config = SortConfig.for_keys(32)
        fast = model.price_hybrid(
            _trace([_pass_trace(conflict=1.5)]), config
        )
        slow = model.price_hybrid(
            _trace([_pass_trace(conflict=32.0, skew=1.0, nonempty=1.0)]),
            config,
        )
        assert slow.histogram > fast.histogram

    def test_thread_reduction_mitigates_serialisation(self):
        model = CostModel()
        config = SortConfig.for_keys(32)
        plain = model.price_hybrid(
            _trace([_pass_trace(conflict=32.0, hist_ops=1.0)]), config
        )
        reduced = model.price_hybrid(
            _trace([_pass_trace(conflict=32.0, hist_ops=1 / 9)]), config
        )
        assert reduced.histogram < plain.histogram

    def test_lookahead_mitigates_scatter(self):
        model = CostModel()
        config = SortConfig.for_keys(32)
        plain = model.price_hybrid(
            _trace([_pass_trace(conflict=32.0, scatter_ops=1.0)]), config
        )
        combined = model.price_hybrid(
            _trace([_pass_trace(conflict=32.0, scatter_ops=1 / 3)]), config
        )
        assert combined.scatter < plain.scatter

    def test_64bit_keys_tolerate_serialisation(self):
        # Figures 12/14: thread reduction has no effect for 64-bit keys —
        # the per-SM requirement is halved (§4.3).
        model = CostModel()
        config = SortConfig.for_keys(64)
        plain = model.price_hybrid(
            _trace(
                [_pass_trace(conflict=32.0, hist_ops=1.0, key_bytes=8)],
                key_bits=64,
            ),
            config,
        )
        reduced = model.price_hybrid(
            _trace(
                [_pass_trace(conflict=32.0, hist_ops=1 / 9, key_bytes=8)],
                key_bits=64,
            ),
            config,
        )
        assert plain.histogram == pytest.approx(reduced.histogram, rel=0.02)

    def test_launch_overhead_per_pass(self):
        model = CostModel()
        config = SortConfig.for_keys(32)
        one = model.price_hybrid(_trace([_pass_trace()]), config)
        two = model.price_hybrid(
            _trace([_pass_trace(), _pass_trace()]), config
        )
        assert two.launch_overhead == pytest.approx(
            2 * one.launch_overhead
        )


class TestLSDPricing:
    def test_passes_scale_time(self):
        model = CostModel()
        five = model.price_lsd(10**8, 4, 0, LSDCostPreset("a", 5))
        eight = model.price_lsd(10**8, 4, 0, LSDCostPreset("a", 8))
        assert five / eight == pytest.approx(7 / 4, rel=0.02)

    def test_efficiency_scales_time(self):
        model = CostModel()
        full = model.price_lsd(10**8, 4, 0, LSDCostPreset("a", 5, 1.0))
        half = model.price_lsd(10**8, 4, 0, LSDCostPreset("a", 5, 0.5))
        assert half == pytest.approx(2 * full, rel=0.05)

    def test_compute_bound_cap(self):
        model = CostModel()
        capped = model.price_lsd(
            10**8, 4, 0, LSDCostPreset("a", 5, compute_rate=0.1e9)
        )
        free = model.price_lsd(10**8, 4, 0, LSDCostPreset("a", 5))
        assert capped > free


class TestMergeSortPricing:
    def test_log_passes(self):
        preset = MergeSortCostPreset("m", block_size=1024)
        assert preset.merge_passes_for(1024) == 0
        assert preset.merge_passes_for(2048) == 1
        assert preset.merge_passes_for(1 << 20) == 10

    def test_larger_inputs_lower_rate(self):
        model = CostModel()
        preset = MergeSortCostPreset("m")
        r1 = (10**7 * 4) / model.price_mergesort(10**7, 4, 0, preset)
        r2 = (10**9 * 4) / model.price_mergesort(10**9, 4, 0, preset)
        assert r2 < r1


class TestEndToEndCalibration:
    """The headline Figure 6 anchors, via the real sorter at small n."""

    def test_hybrid_beats_cub_at_calibrated_scale(self, rng):
        from repro.baselines import CubRadixSort
        from repro.bench.scaling import simulate_sort_at_scale

        keys = uniform_keys(1 << 20, 32, rng)
        hybrid = simulate_sort_at_scale(keys, 500_000_000)
        cub = CubRadixSort("1.5.1").simulated_seconds(500_000_000, 4)
        speedup = cub / hybrid.simulated_seconds
        # §6.1: "more than a two-fold speed-up over CUB" for uniform.
        assert speedup > 1.9

    def test_constant_distribution_ratio(self):
        from repro.baselines import CubRadixSort
        from repro.bench.scaling import simulate_sort_at_scale

        keys = constant_keys(1 << 20, 32)
        hybrid = simulate_sort_at_scale(keys, 500_000_000)
        cub = CubRadixSort("1.5.1").simulated_seconds(500_000_000, 4)
        speedup = cub / hybrid.simulated_seconds
        # §6.1: ~1.7x at zero entropy, ≥1.58 everywhere (±tolerance).
        assert 1.5 <= speedup <= 2.0


class TestHistogramUtilisation:
    def test_figure2_shape(self):
        model = CostModel()
        atomics = model._hist_atomics
        utils_plain = [
            model.histogram_utilisation(atomics.uniform_conflict(q), 4)
            for q in (1, 2, 3, 4, 8, 64, 256)
        ]
        # Rises from ~50% to saturation by q=3 (§4.3, Figure 2).
        assert utils_plain[0] < 0.6
        assert all(u >= 0.9 for u in utils_plain[2:])
        utils_reduced = [
            model.histogram_utilisation(
                atomics.uniform_conflict(q), 4,
                ops_per_key=1 / 9, thread_reduction=True,
            )
            for q in (1, 2, 3, 4, 8, 64, 256)
        ]
        assert all(u >= 0.9 for u in utils_reduced)
