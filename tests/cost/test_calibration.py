"""Tests that the calibration constants stay consistent with the paper."""

from __future__ import annotations

import pytest

from repro.cost.calibration import Calibration, DEFAULT_CALIBRATION


class TestAtomicsAnchors:
    def test_full_serialisation_gives_1_7g(self):
        c = DEFAULT_CALIBRATION
        assert c.hist_atomic_conflict_free / 32 == pytest.approx(
            1.7e9, rel=0.01
        )

    def test_saturated_rate_covers_32bit_requirement(self):
        # Must exceed 8*BW/(k*|SMs|) ≈ 3.30 G keys/SM/s so a uniform
        # distribution can reach peak bandwidth (§4.3).
        assert DEFAULT_CALIBRATION.hist_atomic_saturated >= 3.3e9

    def test_scatter_compute_coefficients_positive(self):
        c = DEFAULT_CALIBRATION
        assert c.scatter_base_seconds_per_key > 0
        assert c.scatter_conflict_seconds_per_key > 0

    def test_scatter_serialisation_stays_secondary_for_64bit(self):
        # Figures 12/14: even full serialisation must not push the
        # 64-bit scatter past its memory time (which is what makes the
        # look-ahead column all-zero for 64-bit keys).
        c = DEFAULT_CALIBRATION
        full = (
            c.scatter_base_seconds_per_key
            + c.scatter_conflict_seconds_per_key * 32
        )
        mem_per_key_per_sm = 28 * (8 + 8 / 0.9) / 369.17e9
        assert full < mem_per_key_per_sm


class TestLocalSortRates:
    def test_all_table3_layouts_covered(self):
        for layout in [(32, 0), (64, 0), (32, 32), (64, 64)]:
            assert layout in DEFAULT_CALIBRATION.local_digit_rates

    def test_rates_positive(self):
        for rate in DEFAULT_CALIBRATION.local_digit_rates.values():
            assert rate > 0


class TestCpuMergeAnchors:
    def test_merge_width_is_four(self):
        # §6.2: the six-core host cannot efficiently merge more than
        # four chunks at a time.
        assert DEFAULT_CALIBRATION.cpu_merge_width == 4

    def test_64gb_merge_near_9_3_seconds(self):
        # Figure 9 discussion: merging 64 GB (16 runs, two passes) takes
        # ~9.3 s on the six-core host.
        c = DEFAULT_CALIBRATION
        passes = 2
        stream = 64e9 / c.cpu_merge_bandwidth
        compare = (64e9 / 16) * c.cpu_merge_per_record
        total = passes * (stream + compare)
        assert total == pytest.approx(9.3, rel=0.1)


class TestOverrides:
    def test_custom_calibration_is_frozen_dataclass(self):
        c = Calibration(cpu_merge_width=8)
        assert c.cpu_merge_width == 8
        with pytest.raises(AttributeError):
            c.cpu_merge_width = 2

    def test_pass_overheads_ordered(self):
        # CUB's per-pass fixed cost is lower than the hybrid's (§6.1:
        # "incurring a slightly lower constant overhead, CUB has an
        # edge" for small inputs).
        c = DEFAULT_CALIBRATION
        assert c.lsd_pass_fixed_overhead < c.hybrid_pass_fixed_overhead
