"""The service's measured-feedback loop and the time-budget gate."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

import repro
from repro.cost.feedback import CostFeedback
from repro.errors import AdmissionError, ConfigurationError
from repro.plan import Planner
from repro.service import SortService


def run(coro):
    return asyncio.run(coro)


class TestFeedbackLoop:
    def test_default_planner_carries_feedback(self):
        service = SortService()
        assert isinstance(service.planner.feedback, CostFeedback)

    def test_repeat_requests_converge_on_measured_cost(self, rng):
        keys = rng.integers(0, 2**32, 60_000).astype(np.uint32)

        async def main():
            async with SortService(micro_batching=False) as service:
                results = [await service.submit(keys) for _ in range(4)]
                return service, results

        service, results = run(main())
        first, *rest = [r.meta["plan"] for r in results]
        # The first request is priced analytically (no history yet);
        # every later one re-plans from its measured execute times.
        assert first.cost_source == "paper-analytical"
        assert all(p.cost_source == "measured-feedback" for p in rest)
        assert service.stats.feedback_observations == 4
        assert service.stats.feedback_signatures == 1
        # The blend moves predictions toward the signature's EWMA.
        feedback = service.planner.feedback
        signature = results[0].meta["plan"].descriptor.signature()
        assert feedback.observations(signature) == 4
        target = feedback.estimate(signature, first.predicted_seconds)
        last_error = abs(rest[-1].predicted_seconds - target)
        first_error = abs(first.predicted_seconds - target)
        assert last_error <= first_error

    def test_cache_replans_when_history_advances(self, rng):
        keys = rng.integers(0, 2**32, 60_000).astype(np.uint32)

        async def main():
            async with SortService(micro_batching=False) as service:
                await service.submit(keys)
                await service.submit(keys)
                return service.stats.to_dict()

        stats = run(main())
        # Same signature twice, but the feedback version advanced in
        # between — the cache must re-price rather than serve the
        # fossilised first estimate.
        assert stats["plan_cache_hits"] == 0
        assert stats["plan_cache_misses"] == 2
        assert stats["feedback_observations"] == 2

    def test_planner_without_feedback_just_plans(self, rng):
        keys = rng.integers(0, 2**32, 30_000).astype(np.uint32)

        async def main():
            planner = Planner(profile=None)
            async with SortService(planner=planner) as service:
                result = await service.submit(keys)
                return service, result

        service, result = run(main())
        assert service.stats.feedback_observations == 0
        assert result.meta["plan"].cost_source == "paper-analytical"
        assert bytes(result.keys) == bytes(np.sort(keys))

    def test_stats_expose_feedback_counters(self):
        stats = SortService().stats.to_dict()
        assert stats["feedback_observations"] == 0
        assert stats["feedback_signatures"] == 0
        assert stats["rejected_time_budget"] == 0


class TestTimeBudget:
    def test_validation(self):
        with pytest.raises(ConfigurationError, match="time_budget"):
            SortService(time_budget=0.0)
        with pytest.raises(ConfigurationError, match="time_budget"):
            SortService(time_budget=-1.0)

    def test_over_budget_plans_are_rejected(self, rng):
        keys = rng.integers(0, 2**32, 200_000).astype(np.uint32)

        async def main():
            # Any real plan predicts more than a nanosecond.
            async with SortService(time_budget=1e-9) as service:
                with pytest.raises(AdmissionError, match="time budget"):
                    await service.submit(keys)
                return service.stats

        stats = run(main())
        assert stats.rejected_time_budget == 1
        assert stats.completed == 0

    def test_within_budget_requests_complete(self, rng):
        keys = rng.integers(0, 2**32, 30_000).astype(np.uint32)

        async def main():
            async with SortService(time_budget=3600.0) as service:
                result = await service.submit(keys)
                return service, result

        service, result = run(main())
        assert bytes(result.keys) == bytes(repro.sort(keys).keys)
        assert service.stats.rejected_time_budget == 0
