"""Unit tests for the micro-batch execution path.

The batch path must be byte-identical to the direct facades for every
layout it accepts — these tests drive :func:`execute_batch` directly;
the service-level and property suites cover it through the scheduler.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.plan import InputDescriptor
from repro.service.batching import batch_configs, execute_batch
from repro.service.request import SortRequest


def _request(keys, values=None, kind=None):
    keys = np.asarray(keys)
    if kind is None:
        kind = "keys" if values is None else "pairs"
    return SortRequest(
        kind=kind,
        descriptor=InputDescriptor.for_array(keys, values),
        keys=keys,
        values=None if values is None else np.asarray(values),
    )


class TestBatchConfigs:
    def test_ladder_covers_the_largest_segment(self):
        assert batch_configs(1) == (32,)
        assert batch_configs(32) == (32,)
        assert batch_configs(33) == (32, 64)
        assert batch_configs(4096)[-1] == 4096

    def test_ladder_is_ascending_powers_of_two(self):
        ladder = batch_configs(10_000)
        assert list(ladder) == sorted(ladder)
        assert all(c & (c - 1) == 0 for c in ladder)


class TestExecuteBatch:
    @pytest.mark.parametrize(
        "dtype",
        [np.uint32, np.uint64, np.int32, np.int64, np.float32, np.float64],
    )
    def test_keys_only_matches_direct_sort(self, dtype, rng):
        arrays = []
        for n in (1, 17, 300, 2048):
            raw = rng.integers(0, 255, n)
            if np.dtype(dtype).kind == "u":
                arrays.append(raw.astype(dtype))
            else:
                arrays.append((raw - 128).astype(dtype))
        results = execute_batch([_request(a) for a in arrays])
        for array, result in zip(arrays, results):
            expect = repro.sort(array)
            assert result.keys.dtype == array.dtype
            assert bytes(result.keys) == bytes(expect.keys)

    def test_float_specials_survive(self):
        keys = np.array(
            [1.5, -0.0, np.nan, 0.0, -np.inf, np.inf, -1.5], dtype=np.float64
        )
        other = np.array([np.nan, -np.nan, 2.0], dtype=np.float64)
        results = execute_batch([_request(keys), _request(other)])
        for array, result in zip((keys, other), results):
            assert bytes(result.keys) == bytes(repro.sort(array).keys)

    def test_pairs_are_stable_like_the_direct_engine(self, rng):
        batch = []
        for n in (5, 64, 900):
            keys = rng.integers(0, 4, n).astype(np.uint32)
            values = rng.integers(0, 2**32, n).astype(np.uint32)
            batch.append((keys, values))
        results = execute_batch([_request(k, v) for k, v in batch])
        for (keys, values), result in zip(batch, results):
            expect = repro.sort_pairs(keys, values)
            assert bytes(result.keys) == bytes(expect.keys)
            assert bytes(result.values) == bytes(expect.values)

    def test_empty_and_single_segments(self):
        empty = np.array([], dtype=np.uint32)
        one = np.array([7], dtype=np.uint32)
        results = execute_batch([_request(empty), _request(one)])
        assert results[0].keys.size == 0
        assert results[0].keys.dtype == np.uint32
        assert results[1].keys.tolist() == [7]

    def test_all_empty_batch(self):
        empty = np.array([], dtype=np.uint32)
        results = execute_batch([_request(empty), _request(empty)])
        assert all(r.keys.size == 0 for r in results)

    def test_records_requests_recompose(self, rng):
        from repro.core.pairs import make_records

        keys = rng.integers(0, 10, 100).astype(np.uint32)
        values = rng.integers(0, 2**32, 100).astype(np.uint32)
        records = make_records(keys, values)
        request = SortRequest(
            kind="records",
            descriptor=InputDescriptor.for_array(keys, values),
            keys=keys,
            values=values,
            records=records,
        )
        (result,) = execute_batch([request])
        expect = repro.sort_records(records)
        assert bytes(result.meta["records"].tobytes()) == bytes(
            expect.meta["records"].tobytes()
        )

    def test_inputs_are_never_mutated(self, rng):
        keys = rng.integers(0, 2**32, 500).astype(np.uint32)
        values = np.arange(500, dtype=np.uint32)
        snapshot = keys.copy(), values.copy()
        execute_batch([_request(keys, values), _request(keys, values)])
        assert np.array_equal(keys, snapshot[0])
        assert np.array_equal(values, snapshot[1])

    def test_narrow_dtypes_are_unbatchable(self):
        # uint8/uint16 arrays are rejected by the in-memory engines;
        # grouping them would make the outcome depend on queue state.
        request = _request(np.arange(10, dtype=np.uint8))
        assert request.batch_group() is None
        assert _request(np.arange(10, dtype=np.uint32)).batch_group()

    def test_output_arrays_are_fresh(self, rng):
        keys = rng.integers(0, 2**32, 64).astype(np.uint32)
        (result,) = execute_batch([_request(keys)])
        assert not np.shares_memory(result.keys, keys)
        result.keys[:] = 0  # must not corrupt anything shared
