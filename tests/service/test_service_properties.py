"""Concurrency properties: the service never changes bytes.

The acceptance property for the service layer: for every dtype and
layout, results obtained through :class:`~repro.service.SortService`
under concurrent mixed-size load are byte-identical to direct
``repro.sort()`` / ``repro.sort_pairs()`` calls — whatever interleaving
the scheduler, the batcher, and the admission gate produce.
"""

from __future__ import annotations

import asyncio

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro.service import SortService

#: Every dtype the in-memory facades accept (the narrow pedagogical
#: uint8/uint16 are file-only — RunWriter widens them on the way in).
ARRAY_DTYPES = tuple(
    np.dtype(d)
    for d in (np.uint32, np.uint64, np.int32, np.int64,
              np.float32, np.float64)
)

#: Value column dtypes exercised for pair requests.
VALUE_DTYPES = (np.dtype(np.uint32), np.dtype(np.uint64))


def _make_input(spec, seed):
    dtype, n, pairs, value_dtype = spec
    rng = np.random.default_rng(seed)
    raw = rng.integers(0, 256, n)
    if dtype.kind == "u":
        keys = raw.astype(dtype)
    elif dtype.kind == "i":
        keys = (raw - 128).astype(dtype)
    else:
        keys = ((raw - 128) / 8.0).astype(dtype)
        if n:
            keys[rng.integers(0, n)] = np.nan
    values = None
    if pairs:
        values = rng.integers(0, 1 << 31, n).astype(value_dtype)
    return keys, values


def _direct(keys, values):
    if values is None:
        result = repro.sort(keys)
        return bytes(result.keys), None
    result = repro.sort_pairs(keys, values)
    return bytes(result.keys), bytes(result.values)


async def _through_service(inputs, micro_batching, staged):
    service = SortService(micro_batching=micro_batching)
    if not staged:
        await service.start()
    tasks = [
        asyncio.ensure_future(service.submit(keys, values))
        for keys, values in inputs
    ]
    await asyncio.sleep(0)
    await service.start()
    results = await asyncio.gather(*tasks)
    await service.close()
    return [
        (
            bytes(r.keys),
            None if r.values is None else bytes(r.values),
        )
        for r in results
    ]


request_specs = st.lists(
    st.tuples(
        st.sampled_from(ARRAY_DTYPES),
        st.integers(min_value=0, max_value=4096),
        st.booleans(),
        st.sampled_from(VALUE_DTYPES),
    ),
    min_size=3,
    max_size=10,
)


@given(
    specs=request_specs,
    seed=st.integers(min_value=0, max_value=2**31),
    micro_batching=st.booleans(),
    staged=st.booleans(),
)
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_any_interleaving_matches_sequential_sort(
    specs, seed, micro_batching, staged
):
    inputs = [
        _make_input(spec, seed + i) for i, spec in enumerate(specs)
    ]
    served = asyncio.run(_through_service(inputs, micro_batching, staged))
    for (keys, values), got in zip(inputs, served):
        assert got == _direct(keys, values)


def test_eight_concurrent_mixed_size_requests_every_layout(rng):
    """The acceptance shape: ≥ 8 in-flight requests per dtype/layout."""
    sizes = (0, 1, 33, 500, 2048, 8192, 10_000, 20_000)
    for dtype in ARRAY_DTYPES:
        for pairs in (False, True):
            inputs = []
            for i, n in enumerate(sizes):
                spec = (dtype, n, pairs, VALUE_DTYPES[i % 2])
                inputs.append(_make_input(spec, 1000 * i + n))
            served = asyncio.run(_through_service(inputs, True, False))
            for (keys, values), got in zip(inputs, served):
                assert got == _direct(keys, values), (dtype, pairs)
