"""The ``repro serve`` JSON-lines driver, end to end through the CLI."""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro
from repro.cli import main as cli_main


def serve(tmp_path, capsys, lines, extra_args=()):
    """Run ``repro serve --input <file>`` and parse the response lines."""
    request_file = tmp_path / "requests.jsonl"
    request_file.write_text(
        "\n".join(json.dumps(line) if isinstance(line, dict) else line
                  for line in lines)
        + "\n"
    )
    code = cli_main(["serve", "--input", str(request_file), *extra_args])
    raw = capsys.readouterr().out
    responses = [json.loads(line) for line in raw.splitlines() if line]
    stats = [r for r in responses if r.get("event") == "stats"]
    assert len(stats) == 1, "exactly one trailing stats record"
    return code, [r for r in responses if r.get("event") != "stats"], stats[0]


class TestServeCli:
    def test_inline_request_echoes_sorted_data(self, tmp_path, capsys):
        code, responses, stats = serve(
            tmp_path,
            capsys,
            [{"id": 1, "keys": [3, 1, 2], "dtype": "uint32"}],
        )
        assert code == 0
        (response,) = responses
        assert response["ok"] and response["keys"] == [1, 2, 3]
        assert stats["completed"] == 1

    def test_inline_pairs_echo_values(self, tmp_path, capsys):
        code, responses, _ = serve(
            tmp_path,
            capsys,
            [{"id": 1, "keys": [5, 5, 1], "values": [0, 1, 2],
              "dtype": "uint32"}],
        )
        assert code == 0
        (response,) = responses
        assert response["keys"] == [1, 5, 5]
        assert response["values"] == [2, 0, 1]  # stable on equal keys

    def test_generated_request_reports_checksum(self, tmp_path, capsys):
        code, responses, _ = serve(
            tmp_path,
            capsys,
            [{"id": 7, "n": 5000, "dtype": "uint32",
              "distribution": "zipf", "seed": 3}],
        )
        assert code == 0
        (response,) = responses
        assert response["ok"] and response["n"] == 5000
        assert "keys" not in response  # generated runs don't echo data
        assert len(response["checksum"]) == 16
        assert response["strategy"] == "hybrid"

    def test_burst_of_small_requests_batches(self, tmp_path, capsys):
        lines = [
            {"id": i, "n": 256, "dtype": "uint32", "seed": i}
            for i in range(6)
        ]
        # The driver submits lines as they parse; a batch window lets
        # the whole burst land in one scheduler drain cycle.
        code, responses, stats = serve(
            tmp_path, capsys, lines, extra_args=("--batch-window", "50")
        )
        assert code == 0
        assert len(responses) == 6
        assert all(r["ok"] for r in responses)
        assert stats["completed"] == 6
        assert stats["batches"] >= 1
        _, _, unbatched = serve(
            tmp_path, capsys, lines, extra_args=("--no-batching",)
        )
        assert unbatched["batches"] == 0

    def test_file_request_round_trips(self, tmp_path, capsys, rng):
        from repro.external import FileLayout, read_records, write_records

        keys = rng.integers(0, 2**32, 20_000).astype(np.uint32)
        layout = FileLayout(np.dtype(np.uint32), None)
        src, dst = tmp_path / "in.bin", tmp_path / "out.bin"
        write_records(src, layout.to_records(keys, None))
        code, responses, _ = serve(
            tmp_path,
            capsys,
            [{"id": 1, "input": str(src), "output": str(dst),
              "dtype": "uint32", "memory_budget": "32K"}],
        )
        assert code == 0
        (response,) = responses
        assert response["kind"] == "file" and response["runs"] > 1
        assert bytes(read_records(dst, layout)) == bytes(np.sort(keys))

    def test_malformed_lines_fail_that_line_only(self, tmp_path, capsys):
        code, responses, stats = serve(
            tmp_path,
            capsys,
            [
                "this is not json",
                {"id": 2, "keys": [2, 1], "dtype": "uint32"},
                {"id": 3, "input": "no-output.bin"},
            ],
        )
        assert code == 1  # failures happened...
        by_id = {r.get("id"): r for r in responses}
        assert by_id[2]["ok"] and by_id[2]["keys"] == [1, 2]  # ...but good
        assert not by_id[3]["ok"] and "output" in by_id[3]["error"]
        bad = [r for r in responses if r.get("line") == 1]
        assert bad and "bad JSON" in bad[0]["error"]

    def test_float_nan_request_is_ok_and_strict_json(self, tmp_path, capsys):
        code, responses, _ = serve(
            tmp_path,
            capsys,
            [{"id": 1, "keys": [1.5, "NaN", 0.5], "dtype": "float64"}],
        )
        # json.loads in serve() already proves every line is parseable;
        # the NaN is echoed as a string and the sort is not a failure.
        assert code == 0
        (response,) = responses
        assert response["ok"]
        assert response["keys"] == [0.5, 1.5, "NaN"]

    def test_pairs_file_defaults_value_dtype_to_key_dtype(
        self, tmp_path, capsys, rng
    ):
        from repro.external import FileLayout, read_records, write_records

        keys = rng.integers(0, 2**32, 5000).astype(np.uint32)
        values = np.arange(5000, dtype=np.uint32)
        layout = FileLayout(np.dtype(np.uint32), np.dtype(np.uint32))
        src, dst = tmp_path / "pairs.bin", tmp_path / "sorted.bin"
        write_records(src, layout.to_records(keys, values))
        code, responses, _ = serve(
            tmp_path,
            capsys,
            [{"id": 1, "input": str(src), "output": str(dst),
              "dtype": "uint32", "pairs": True}],
        )
        assert code == 0 and responses[0]["n"] == 5000
        got_keys, got_values = layout.to_columns(read_records(dst, layout))
        expect = repro.sort_pairs(keys, values)
        assert bytes(got_keys) == bytes(expect.keys)
        assert bytes(got_values) == bytes(expect.values)

    def test_unexpected_exception_still_yields_a_response(
        self, tmp_path, capsys
    ):
        # OverflowError is outside the ReproError family; the line must
        # still get its error response and fail the exit code.
        code, responses, stats = serve(
            tmp_path,
            capsys,
            [
                {"id": 1, "keys": [99999999999999999999], "dtype": "uint32"},
                {"id": 2, "keys": [2, 1], "dtype": "uint32"},
            ],
        )
        assert code == 1
        by_id = {r.get("id"): r for r in responses}
        assert not by_id[1]["ok"] and by_id[1]["error"]
        assert by_id[2]["ok"] and by_id[2]["keys"] == [1, 2]
        assert stats["completed"] == 1

    def test_checksum_matches_direct_sort(self, tmp_path, capsys):
        import hashlib

        from repro.workloads import typed_keys

        record = {"id": 1, "n": 2000, "dtype": "uint64", "seed": 9}
        code, responses, _ = serve(tmp_path, capsys, [record])
        assert code == 0
        keys = typed_keys(
            2000, np.dtype(np.uint64), "uniform", np.random.default_rng(9)
        )
        expect = hashlib.sha256(
            repro.sort(keys).keys.tobytes()
        ).hexdigest()[:16]
        assert responses[0]["checksum"] == expect


class TestRequestKwargs:
    def test_unknown_shape_rejected(self):
        from repro.service.driver import request_kwargs

        with pytest.raises(ValueError, match="request needs"):
            request_kwargs({"id": 1})

    def test_memory_budget_suffix_parsed(self):
        from repro.service.driver import request_kwargs

        kwargs = request_kwargs(
            {"keys": [1, 2], "memory_budget": "1M"}
        )
        assert kwargs["memory_budget"] == 1 << 20
