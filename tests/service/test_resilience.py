"""Service-level failure containment: deadlines, watchdog, shedding.

These tests drive the full async path — ``submit`` through planning,
admission, the thread-pool dispatch, and ``resilient_execute`` — with
deterministic faults injected at the named service/engine sites.
"""

from __future__ import annotations

import asyncio
import io
import json

import numpy as np
import pytest

import repro
from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    OverloadedError,
    TransientError,
)
from repro.resilience import faults
from repro.resilience.faults import FaultPlan, FaultSpec, inject
from repro.resilience.policy import Deadline
from repro.service import SortService
from repro.service.driver import request_kwargs, serve_stream


@pytest.fixture(autouse=True)
def clean_faults():
    faults.uninstall()
    yield
    faults.uninstall()


def run(coro):
    return asyncio.run(coro)


def make_keys(n=20_000, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 1 << 32, n, dtype=np.uint64).astype(np.uint32)


async def submit_once(keys, *, service_kwargs=None, **submit_kwargs):
    async with SortService(
        micro_batching=False, **(service_kwargs or {})
    ) as service:
        result = await service.submit(keys, **submit_kwargs)
        return result, service.stats


class TestDeadlines:
    def test_expired_deadline_is_rejected_not_run(self):
        keys = make_keys()

        async def main():
            async with SortService(micro_batching=False) as service:
                with pytest.raises(
                    DeadlineExceededError, match="queued"
                ):
                    await service.submit(keys, deadline=0.0)
                return service.stats

        stats = run(main())
        assert stats.rejected_expired == 1
        assert stats.completed == 0

    def test_float_deadline_and_deadline_object_both_accepted(self):
        keys = make_keys(5_000)

        async def main():
            async with SortService(micro_batching=False) as service:
                a = await service.submit(keys, deadline=30.0)
                b = await service.submit(
                    keys, deadline=Deadline.after(30.0)
                )
                return a, b

        a, b = run(main())
        assert bytes(a.keys) == bytes(b.keys) == bytes(repro.sort(keys).keys)

    def test_negative_deadline_rejected(self):
        async def main():
            async with SortService(micro_batching=False) as service:
                with pytest.raises(ConfigurationError):
                    await service.submit(make_keys(100), deadline=-1.0)

        run(main())


class TestRetryAndDegrade:
    def test_single_engine_fault_is_retried_away(self):
        keys = make_keys()
        with inject(FaultPlan.single("engine.hybrid")):
            result, stats = run(submit_once(keys))
        assert bytes(result.keys) == bytes(repro.sort(keys).keys)
        assert result.meta["resilience"]["retries"] == 1
        assert result.meta["resilience"]["executed"] == "hybrid"
        assert stats.retries == 1
        assert stats.fallbacks == 0
        assert stats.completed == 1

    def test_persistent_engine_fault_degrades(self):
        keys = make_keys()
        with inject(FaultPlan.single("engine.hybrid", times=-1)):
            result, stats = run(submit_once(keys))
        assert bytes(result.keys) == bytes(repro.sort(keys).keys)
        assert result.meta["resilience"]["executed"] == "fallback"
        assert stats.fallbacks == 1
        assert stats.completed == 1

    def test_degradation_off_surfaces_the_typed_error(self):
        keys = make_keys(5_000)
        with inject(FaultPlan.single("engine.hybrid", times=-1)):
            with pytest.raises(TransientError):
                run(
                    submit_once(
                        keys,
                        service_kwargs=dict(
                            degradation=False, retry_policy=None
                        ),
                    )
                )

    def test_plan_site_failure_is_typed_and_counted(self):
        async def main():
            async with SortService(micro_batching=False) as service:
                with pytest.raises(TransientError):
                    await service.submit(make_keys(5_000))
                return service.stats

        with inject(FaultPlan.single("service.plan", times=-1)):
            stats = run(main())
        assert stats.failed == 1


class TestWatchdog:
    def test_hung_dispatch_is_abandoned_with_a_typed_error(self):
        keys = make_keys(5_000)
        with inject(
            FaultPlan.single("service.execute", "hang", delay=30.0)
        ) as plan:
            async def main():
                async with SortService(
                    micro_batching=False, watchdog_timeout=0.3
                ) as service:
                    with pytest.raises(
                        DeadlineExceededError, match="abandoned"
                    ):
                        await service.submit(keys)
                    # Unblock the abandoned worker before close() waits
                    # on the executor, or teardown stalls for `delay`.
                    plan.release_hangs()
                    return service.stats

            stats = run(main())
        assert stats.timeouts == 1

    def test_watchdog_validation(self):
        with pytest.raises(ConfigurationError):
            SortService(watchdog_timeout=0.0)
        with pytest.raises(ConfigurationError):
            SortService(shed_failure_threshold=0.0)


class TestLoadShedding:
    def test_overload_detection_needs_a_full_window(self):
        service = SortService()
        for _ in range(7):
            service._record_outcome(False)
        assert not service._overloaded()  # too few samples to judge
        service._record_outcome(False)
        assert service._overloaded()
        for _ in range(32):
            service._record_outcome(True)
        assert not service._overloaded()  # the window slid past the storm

    def test_retry_after_hint_is_positive_and_bounded(self):
        service = SortService()
        hint = service._retry_after_hint()
        assert hint >= 0.05

    def test_failure_storm_sheds_small_requests_with_retry_after(self):
        keys = make_keys(1_000)

        async def main():
            # Degradation and retries off so every dispatch genuinely
            # fails — a persistent engine fault manufactures the storm.
            async with SortService(
                degradation=False, retry_policy=None
            ) as service:
                with inject(FaultPlan.single("engine.hybrid", times=-1)):
                    for _ in range(8):
                        with pytest.raises(TransientError):
                            await service.submit(keys)
                assert service._overloaded()
                with pytest.raises(OverloadedError) as info:
                    await service.submit(keys)
                assert info.value.retry_after >= 0.05
                return service.stats

        stats = run(main())
        assert stats.shed == 1
        assert stats.failed == 8

    def test_stats_expose_all_failure_counters(self):
        table = SortService().stats.to_dict()
        for counter in (
            "retries", "timeouts", "fallbacks", "rejected_expired", "shed"
        ):
            assert counter in table


class TestBatchDeadlines:
    def test_expired_member_of_a_batch_is_rejected_alone(self):
        keys = make_keys(1_000)

        async def main():
            async with SortService() as service:
                live = asyncio.ensure_future(
                    service.submit(keys, deadline=30.0)
                )
                dead = asyncio.ensure_future(
                    service.submit(keys, deadline=0.0)
                )
                await asyncio.sleep(0)
                await service.start()
                results = await asyncio.gather(
                    live, dead, return_exceptions=True
                )
                return results, service.stats

        (ok, err), stats = run(main())
        assert bytes(ok.keys) == bytes(repro.sort(keys).keys)
        assert isinstance(err, DeadlineExceededError)
        assert stats.rejected_expired == 1


class TestDriverSurface:
    def test_request_kwargs_parses_deadline(self):
        kwargs = request_kwargs(
            {"id": 1, "keys": [3, 1, 2], "dtype": "uint32",
             "deadline": 2.5}
        )
        assert kwargs["deadline"] == 2.5

    def test_error_responses_carry_type_and_retry_after(self):
        lines = io.StringIO(
            '{"id": 1, "keys": [3, 1, 2], "dtype": "uint32", '
            '"deadline": 0.0}\n'
        )
        out: list[str] = []
        rc = run(
            serve_stream(lines, out.append, micro_batching=False)
        )
        responses = [json.loads(line) for line in out]
        assert rc == 1
        error = responses[0]
        assert error["ok"] is False
        assert error["error_type"] == "DeadlineExceededError"
        stats = responses[-1]
        assert stats["event"] == "stats"
        assert stats["rejected_expired"] == 1

    def test_degraded_response_reports_the_executed_engine(self):
        lines = io.StringIO(
            '{"id": 1, "n": 5000, "dtype": "uint32"}\n'
        )
        out: list[str] = []
        with inject(
            FaultPlan([FaultSpec(site="engine.hybrid", times=-1)])
        ):
            rc = run(
                serve_stream(lines, out.append, micro_batching=False)
            )
        responses = [json.loads(line) for line in out]
        assert rc == 0
        first = responses[0]
        assert first["ok"] is True
        assert first["degraded_to"] == "fallback"
        stats = responses[-1]
        assert stats["fallbacks"] == 1
