"""Unit tests for the plan cache."""

from __future__ import annotations

import numpy as np

from repro.plan import InputDescriptor, Planner
from repro.service.cache import PlanCache, descriptor_signature


class TestDescriptorSignature:
    def test_equal_descriptors_share_a_signature(self):
        a = InputDescriptor(n=100, key_dtype=np.uint32)
        b = InputDescriptor(n=100, key_dtype="uint32")
        assert descriptor_signature(a) == descriptor_signature(b)

    def test_every_planning_input_is_in_the_signature(self):
        base = InputDescriptor(n=100, key_dtype=np.uint32)
        variants = [
            InputDescriptor(n=101, key_dtype=np.uint32),
            InputDescriptor(n=100, key_dtype=np.uint64),
            InputDescriptor(n=100, key_dtype=np.uint32, value_dtype=np.uint32),
            InputDescriptor(n=100, key_dtype=np.uint32, memory_budget=1 << 10),
            InputDescriptor(n=100, key_dtype=np.uint32, workers=2),
        ]
        signatures = {descriptor_signature(d) for d in variants}
        assert descriptor_signature(base) not in signatures
        assert len(signatures) == len(variants)


class TestPlanCache:
    def test_hit_returns_the_same_plan_object(self):
        cache = PlanCache(maxsize=8)
        desc = InputDescriptor(n=1000, key_dtype=np.uint32)
        plan, hit = cache.get_or_plan(Planner(), desc)
        assert not hit and cache.misses == 1
        again, hit = cache.get_or_plan(Planner(), desc)
        assert hit and again is plan and cache.hits == 1

    def test_lru_evicts_the_oldest_shape(self):
        cache = PlanCache(maxsize=2)
        descs = [
            InputDescriptor(n=n, key_dtype=np.uint32) for n in (10, 20, 30)
        ]
        for desc in descs:
            cache.get_or_plan(Planner(), desc)
        assert len(cache) == 2
        _, hit = cache.get_or_plan(Planner(), descs[0])  # evicted
        assert not hit
        _, hit = cache.get_or_plan(Planner(), descs[2])  # still resident
        assert hit

    def test_file_descriptors_bypass_the_cache(self, tmp_path):
        from repro.external import FileLayout, write_records

        layout = FileLayout(np.dtype(np.uint32), None)
        path = tmp_path / "input.bin"
        write_records(
            path, layout.to_records(np.arange(64, dtype=np.uint32), None)
        )
        desc = InputDescriptor.for_file(path, layout)
        cache = PlanCache(maxsize=8)
        _, hit1 = cache.get_or_plan(Planner(), desc)
        _, hit2 = cache.get_or_plan(Planner(), desc)
        assert not hit1 and not hit2 and len(cache) == 0

    def test_maxsize_zero_disables_caching(self):
        cache = PlanCache(maxsize=0)
        desc = InputDescriptor(n=1000, key_dtype=np.uint32)
        cache.get_or_plan(Planner(), desc)
        _, hit = cache.get_or_plan(Planner(), desc)
        assert not hit and cache.misses == 2
