"""Unit tests for the admission controller and its byte accounting."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.errors import AdmissionError, ConfigurationError
from repro.plan import InputDescriptor, Planner
from repro.service.admission import (
    BUFFERS_IN_PLACE,
    AdmissionController,
    plan_resident_bytes,
)


class TestPlanResidentBytes:
    def test_hybrid_charges_three_buffers(self):
        desc = InputDescriptor(n=1000, key_dtype=np.uint32)
        plan = Planner().plan(desc)
        assert plan.strategy == "hybrid"
        assert plan_resident_bytes(plan) == BUFFERS_IN_PLACE * 4000

    def test_fallback_charges_three_buffers(self):
        desc = InputDescriptor(n=1000, key_dtype=np.uint32)
        plan = Planner(adaptive=True).plan(desc)
        assert plan.strategy == "fallback"
        assert plan_resident_bytes(plan) == BUFFERS_IN_PLACE * 4000

    def test_chunked_charges_chunks_not_input(self):
        desc = InputDescriptor(
            n=1_000_000, key_dtype=np.uint32, memory_budget=1 << 20
        )
        plan = Planner().plan(desc)
        assert plan.strategy == "hetero"
        charge = plan_resident_bytes(plan)
        assert charge == BUFFERS_IN_PLACE * plan.chunk_plan.chunk_bytes
        # The whole point of chunking: the charge is bounded by the
        # budget, not by the (much larger) input.
        assert charge <= desc.memory_budget
        assert charge < desc.total_bytes

    def test_external_charges_its_run_budget(self, tmp_path):
        from repro.external import FileLayout, write_records

        keys = np.arange(10_000, dtype=np.uint32)
        layout = FileLayout(np.dtype(np.uint32), None)
        path = tmp_path / "input.bin"
        write_records(path, layout.to_records(keys, None))
        desc = InputDescriptor.for_file(
            path, layout, memory_budget=8 << 10
        )
        plan = Planner().plan(desc)
        assert plan.strategy == "external"
        assert plan_resident_bytes(plan) == 8 << 10

    def test_empty_input_still_charges_one_byte(self):
        plan = Planner().plan(InputDescriptor(n=0, key_dtype=np.uint32))
        assert plan_resident_bytes(plan) == 1


class TestAdmissionController:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ConfigurationError):
            AdmissionController(0)

    def test_over_capacity_request_rejected_immediately(self):
        async def run():
            gate = AdmissionController(100)
            with pytest.raises(AdmissionError):
                await gate.acquire(101)
            assert gate.in_flight == 0

        asyncio.run(run())

    def test_acquire_release_accounting(self):
        async def run():
            gate = AdmissionController(100)
            await gate.acquire(60)
            await gate.acquire(30)
            assert gate.in_flight == 90
            assert gate.available == 10
            assert gate.peak_in_flight == 90
            await gate.release(60)
            assert gate.in_flight == 30
            assert gate.peak_in_flight == 90

        asyncio.run(run())

    def test_waiters_admitted_in_fifo_order(self):
        # FIFO prevents starvation: once a large charge is parked,
        # later small ones queue behind it even though they would fit.
        async def run():
            gate = AdmissionController(100)
            order = []

            await gate.acquire(80)

            async def want(tag, nbytes):
                await gate.acquire(nbytes)
                order.append(tag)

            big = asyncio.create_task(want("big", 90))
            small = asyncio.create_task(want("small", 20))
            for _ in range(3):
                await asyncio.sleep(0)
            assert order == []  # small fits, but never passes big
            await gate.release(80)
            await big
            assert order == ["big"]
            await gate.release(90)
            await small
            assert order == ["big", "small"]
            await gate.release(20)
            assert gate.in_flight == 0

        asyncio.run(run())

    def test_uncontended_small_charges_interleave(self):
        # With no larger charge parked ahead, small acquires never wait.
        async def run():
            gate = AdmissionController(100)
            await gate.acquire(30)
            await gate.acquire(30)
            await gate.acquire(30)
            assert gate.in_flight == 90

        asyncio.run(run())

    def test_cancelled_waiter_does_not_block_the_queue(self):
        async def run():
            gate = AdmissionController(100)
            await gate.acquire(80)
            stuck = asyncio.create_task(gate.acquire(50))
            behind = asyncio.create_task(gate.acquire(10))
            await asyncio.sleep(0)
            stuck.cancel()
            await asyncio.sleep(0)
            await behind  # head cancelled -> next waiter admitted
            assert gate.in_flight == 90

        asyncio.run(run())
