"""SortService behaviour: lifecycle, edge cases, batching, admission.

The deterministic staging trick used throughout: submissions made
before ``start()`` simply queue, so a test can lay out an exact burst,
then start the scheduler and observe exactly one drain cycle — no
timing, no sleeps (beyond yielding to let ``submit`` coroutines run).
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

import repro
from repro.errors import AdmissionError, ConfigurationError
from repro.service import SortService


def run(coro):
    return asyncio.run(coro)


async def staged_burst(service, payloads):
    """Queue every payload, then start, gather, and close."""
    tasks = [
        asyncio.ensure_future(
            service.submit(*p) if isinstance(p, tuple) else service.submit(p)
        )
        for p in payloads
    ]
    await asyncio.sleep(0)
    await service.start()
    results = await asyncio.gather(*tasks)
    await service.close()
    return results


class TestBasics:
    def test_single_array_matches_direct_sort(self, rng):
        keys = rng.integers(0, 2**32, 20_000).astype(np.uint32)

        async def main():
            async with SortService() as service:
                return await service.submit(keys)

        result = run(main())
        assert bytes(result.keys) == bytes(repro.sort(keys).keys)
        assert result.meta["service"]["batch_size"] == 1
        assert result.meta["plan"].strategy == "hybrid"

    def test_pairs_and_records(self, rng):
        from repro.core.pairs import make_records

        keys = rng.integers(0, 50, 5000).astype(np.uint32)
        values = rng.integers(0, 2**32, 5000).astype(np.uint32)
        records = make_records(keys, values)

        async def main():
            async with SortService() as service:
                return await asyncio.gather(
                    service.submit(keys, values), service.submit(records)
                )

        pair_result, record_result = run(main())
        expect = repro.sort_pairs(keys, values)
        assert bytes(pair_result.keys) == bytes(expect.keys)
        assert bytes(pair_result.values) == bytes(expect.values)
        direct = repro.sort_records(records)
        assert bytes(record_result.meta["records"].tobytes()) == bytes(
            direct.meta["records"].tobytes()
        )

    def test_empty_and_single_element_requests(self):
        empty = np.array([], dtype=np.uint32)
        one = np.array([42], dtype=np.uint64)

        async def main():
            async with SortService() as service:
                return await asyncio.gather(
                    service.submit(empty), service.submit(one)
                )

        r_empty, r_one = run(main())
        assert r_empty.keys.size == 0 and r_empty.keys.dtype == np.uint32
        assert r_one.keys.tolist() == [42] and r_one.keys.dtype == np.uint64

    def test_duplicate_submissions_of_the_same_array(self, rng):
        keys = rng.integers(0, 2**32, 3000).astype(np.uint32)
        snapshot = keys.copy()

        async def main():
            service = SortService()
            return await staged_burst(service, [keys, keys, keys])

        results = run(main())
        expect = bytes(repro.sort(snapshot).keys)
        assert all(bytes(r.keys) == bytes(expect) for r in results)
        assert np.array_equal(keys, snapshot)  # input never mutated

    def test_submit_many_mixed_payload_forms(self, rng):
        keys = rng.integers(0, 2**32, 100).astype(np.uint32)
        values = np.arange(100, dtype=np.uint32)

        async def main():
            async with SortService() as service:
                return await service.submit_many(
                    [keys, (keys, values), {"data": keys}]
                )

        a, b, c = run(main())
        expect = repro.sort(keys)
        assert bytes(a.keys) == bytes(expect.keys) == bytes(c.keys)
        assert bytes(b.values) == bytes(repro.sort_pairs(keys, values).values)

    def test_workers_kwarg_is_byte_identical(self, rng):
        keys = rng.integers(0, 2**32, 50_000).astype(np.uint32)

        async def main():
            async with SortService() as service:
                return await asyncio.gather(
                    service.submit(keys), service.submit(keys, workers=2)
                )

        one, two = run(main())
        assert bytes(one.keys) == bytes(two.keys)

    def test_stray_file_kwargs_rejected_for_arrays(self):
        async def main():
            async with SortService() as service:
                await service.submit(
                    np.arange(4, dtype=np.uint32), output="x.bin"
                )

        with pytest.raises(ConfigurationError, match="file-path inputs"):
            run(main())

    def test_file_path_needs_output(self):
        async def main():
            async with SortService() as service:
                await service.submit("data.bin", dtype="uint32")

        with pytest.raises(ConfigurationError, match="output="):
            run(main())

    def test_file_path_rejects_positional_values(self):
        # A values column for a file sort would be silently dropped —
        # the layout (value_dtype=) is how pairs files are described.
        async def main():
            async with SortService() as service:
                await service.submit(
                    "data.bin",
                    np.arange(4, dtype=np.uint32),
                    output="out.bin",
                    dtype="uint32",
                )

        with pytest.raises(ConfigurationError, match="values="):
            run(main())

    def test_broken_injected_config_rejects_instead_of_hanging(self, rng):
        from types import SimpleNamespace

        keys = rng.integers(0, 2**32, 100).astype(np.uint32)

        async def main():
            async with SortService() as service:
                # Looks config-ish enough to pass submit (has .workers)
                # but explodes inside the planner: the caller must get
                # the exception, not an eternal await.
                await asyncio.wait_for(
                    service.submit(keys, config=SimpleNamespace(workers=1)),
                    timeout=10,
                )

        with pytest.raises(AttributeError):
            run(main())


class TestLifecycle:
    def test_submit_after_close_raises(self):
        async def main():
            service = SortService()
            await service.start()
            await service.close()
            with pytest.raises(ConfigurationError, match="closed"):
                await service.submit(np.arange(4, dtype=np.uint32))

        run(main())

    def test_close_without_start_withdraws_queued_requests(self):
        async def main():
            service = SortService()
            task = asyncio.ensure_future(
                service.submit(np.arange(4, dtype=np.uint32))
            )
            await asyncio.sleep(0)
            await service.close()
            with pytest.raises(asyncio.CancelledError):
                await task
            return service.stats

        stats = run(main())
        assert stats.cancelled == 1

    def test_close_is_idempotent(self):
        async def main():
            service = SortService()
            await service.start()
            await service.close()
            await service.close()

        run(main())


class TestCancellation:
    def test_cancel_mid_queue_skips_only_that_request(self, rng):
        arrays = [
            rng.integers(0, 2**32, 64).astype(np.uint32) for _ in range(5)
        ]

        async def main():
            service = SortService()
            tasks = [
                asyncio.ensure_future(service.submit(a)) for a in arrays
            ]
            await asyncio.sleep(0)
            tasks[2].cancel()
            await service.start()
            results = await asyncio.gather(*tasks, return_exceptions=True)
            await service.close()
            return service.stats, results

        stats, results = run(main())
        assert isinstance(results[2], asyncio.CancelledError)
        for i, (array, result) in enumerate(zip(arrays, results)):
            if i == 2:
                continue
            assert bytes(result.keys) == bytes(repro.sort(array).keys)
        assert stats.cancelled == 1
        assert stats.completed == 4


class TestMicroBatching:
    def test_staged_burst_coalesces_into_one_dispatch(self, rng):
        arrays = [
            rng.integers(0, 2**32, n).astype(np.uint32)
            for n in (0, 1, 17, 500, 4096)
        ]

        async def main():
            service = SortService()
            results = await staged_burst(service, arrays)
            return service.stats, results

        stats, results = run(main())
        assert stats.batches == 1
        assert stats.max_batch_size == len(arrays)
        for array, result in zip(arrays, results):
            assert bytes(result.keys) == bytes(repro.sort(array).keys)
            assert result.meta["service"]["batch_size"] == len(arrays)
            assert result.meta["engine"] == "service-batch"

    def test_incompatible_layouts_batch_separately(self, rng):
        u32 = [rng.integers(0, 99, 64).astype(np.uint32) for _ in range(2)]
        f64 = [rng.standard_normal(64) for _ in range(2)]
        pairs = [
            (
                rng.integers(0, 99, 64).astype(np.uint32),
                np.arange(64, dtype=np.uint32),
            )
            for _ in range(2)
        ]

        async def main():
            service = SortService()
            results = await staged_burst(service, u32 + f64 + pairs)
            return service.stats, results

        stats, results = run(main())
        assert stats.batches == 3
        assert stats.max_batch_size == 2
        for array, result in zip(u32 + f64, results[:4]):
            assert bytes(result.keys) == bytes(repro.sort(array).keys)
        for (keys, values), result in zip(pairs, results[4:]):
            expect = repro.sort_pairs(keys, values)
            assert bytes(result.keys) == bytes(expect.keys)
            assert bytes(result.values) == bytes(expect.values)

    def test_large_requests_stay_on_the_direct_path(self, rng):
        small = rng.integers(0, 2**32, 100).astype(np.uint32)
        large = rng.integers(0, 2**32, 20_000).astype(np.uint32)

        async def main():
            service = SortService()  # default threshold is 8192 records
            results = await staged_burst(service, [small, small, large])
            return service.stats, results

        stats, results = run(main())
        assert stats.batches == 1
        assert results[2].meta["service"]["batch_size"] == 1
        assert results[2].meta.get("engine") != "service-batch"
        assert bytes(results[2].keys) == bytes(repro.sort(large).keys)

    def test_batching_off_runs_everything_individually(self, rng):
        arrays = [
            rng.integers(0, 2**32, 64).astype(np.uint32) for _ in range(4)
        ]

        async def main():
            service = SortService(micro_batching=False)
            results = await staged_burst(service, arrays)
            return service.stats, results

        stats, results = run(main())
        assert stats.batches == 0
        assert stats.max_batch_size == 1
        for array, result in zip(arrays, results):
            assert bytes(result.keys) == bytes(repro.sort(array).keys)

    def test_unplannable_batch_member_rejects_only_itself(self, rng):
        # datetime64 has an 8-byte itemsize (so it looks batchable) but
        # no §4.6 bijection; planning fails.  The member's caller must
        # get the error — and the rest of the coalition its results.
        from repro.errors import UnsupportedDtypeError

        good = rng.integers(0, 2**32, 64).astype(np.uint64)
        # Two bad members so they coalesce into a real batch of their
        # own (a lone one would fall back to the single path).
        bad = np.array([1, 2, 3], dtype="datetime64[ns]")

        async def main():
            service = SortService()
            tasks = [
                asyncio.ensure_future(service.submit(p))
                for p in (good, bad, bad, good)
            ]
            await asyncio.sleep(0)
            await service.start()
            results = await asyncio.gather(*tasks, return_exceptions=True)
            await service.close()
            return results

        results = run(main())
        assert isinstance(results[1], UnsupportedDtypeError)
        assert isinstance(results[2], UnsupportedDtypeError)
        for i in (0, 3):
            assert bytes(results[i].keys) == bytes(repro.sort(good).keys)

    def test_pair_packing_rejected_for_arrays(self):
        async def main():
            async with SortService() as service:
                await service.submit(
                    np.arange(4, dtype=np.uint32), pair_packing="fused"
                )

        with pytest.raises(ConfigurationError, match="file-path inputs"):
            run(main())

    def test_batch_caps_split_oversized_coalitions(self, rng):
        arrays = [
            rng.integers(0, 2**32, 64).astype(np.uint32) for _ in range(6)
        ]

        async def main():
            service = SortService(batch_max_requests=4)
            results = await staged_burst(service, arrays)
            return service.stats, results

        stats, results = run(main())
        assert stats.batches == 2
        assert stats.max_batch_size == 4
        for array, result in zip(arrays, results):
            assert bytes(result.keys) == bytes(repro.sort(array).keys)


class TestPlanCache:
    def test_repeat_shapes_hit_the_cache(self, rng):
        shape_a = [
            rng.integers(0, 2**32, 1000).astype(np.uint32) for _ in range(3)
        ]
        shape_b = rng.integers(0, 2**32, 2000).astype(np.uint64)

        async def main():
            service = SortService(micro_batching=False)
            results = await staged_burst(service, shape_a + [shape_b])
            return service.stats, results

        stats, results = run(main())
        assert stats.plan_cache_misses == 2  # one per distinct shape
        assert stats.plan_cache_hits == 2
        assert results[1].meta["service"]["cache_hit"]


class TestAdmission:
    def test_request_exceeding_budget_alone_is_rejected(self, rng):
        big = rng.integers(0, 2**32, 100_000).astype(np.uint32)

        async def main():
            async with SortService(memory_budget=1 << 16) as service:
                with pytest.raises(AdmissionError, match="memory budget"):
                    await service.submit(big)
                return service.stats

        stats = run(main())
        assert stats.rejected == 1
        assert stats.completed == 0

    def test_budgeted_request_chunks_and_fits(self, rng):
        big = rng.integers(0, 2**32, 100_000).astype(np.uint32)

        async def main():
            async with SortService(memory_budget=1 << 16) as service:
                return await service.submit(big, memory_budget=1 << 14)

        result = run(main())
        assert result.meta["plan"].strategy == "hetero"
        assert bytes(result.keys) == bytes(np.sort(big))

    def test_small_requests_complete_alongside_rejection(self, rng):
        big = rng.integers(0, 2**32, 100_000).astype(np.uint32)
        small = rng.integers(0, 2**32, 500).astype(np.uint32)

        async def main():
            service = SortService(memory_budget=1 << 16)
            tasks = [
                asyncio.ensure_future(service.submit(small)),
                asyncio.ensure_future(service.submit(big)),
                asyncio.ensure_future(service.submit(small)),
            ]
            await asyncio.sleep(0)
            await service.start()
            results = await asyncio.gather(*tasks, return_exceptions=True)
            await service.close()
            return results

        results = run(main())
        assert isinstance(results[1], AdmissionError)
        assert bytes(results[0].keys) == bytes(repro.sort(small).keys)
        assert bytes(results[2].keys) == bytes(repro.sort(small).keys)

    def test_peak_in_flight_respects_budget(self, rng):
        arrays = [
            rng.integers(0, 2**32, 4000).astype(np.uint32) for _ in range(8)
        ]
        budget = 100_000  # two 48 KB charges fit, three do not

        async def main():
            service = SortService(
                memory_budget=budget, micro_batching=False
            )
            results = await staged_burst(service, arrays)
            return service.stats, results

        stats, results = run(main())
        assert 0 < stats.peak_in_flight_bytes <= budget
        for array, result in zip(arrays, results):
            assert bytes(result.keys) == bytes(repro.sort(array).keys)


class TestFileRequests:
    def test_file_round_trip_through_the_service(self, tmp_path, rng):
        from repro.external import FileLayout, read_records, write_records

        keys = rng.integers(0, 2**32, 30_000).astype(np.uint32)
        layout = FileLayout(np.dtype(np.uint32), None)
        src = tmp_path / "input.bin"
        dst = tmp_path / "output.bin"
        write_records(src, layout.to_records(keys, None))

        async def main():
            async with SortService() as service:
                return await service.submit(
                    str(src),
                    output=str(dst),
                    dtype="uint32",
                    memory_budget=32 << 10,
                )

        report = run(main())
        assert report.plan.strategy == "external"
        assert report.n_runs > 1
        assert bytes(read_records(dst, layout)) == bytes(np.sort(keys))

    def test_missing_file_fails_cleanly(self, tmp_path):
        async def main():
            async with SortService() as service:
                await service.submit(
                    str(tmp_path / "ghost.bin"),
                    output=str(tmp_path / "out.bin"),
                    dtype="uint32",
                )

        with pytest.raises(FileNotFoundError):
            run(main())
