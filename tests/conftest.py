"""Shared fixtures for the test suite.

``small_config`` scales the Table 3 geometry down so that multi-pass
structure (counting passes, merging, local-sort ladder) is exercised on
inputs of a few thousand keys, keeping the suite fast while touching the
same code paths as paper-scale runs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SortConfig


@pytest.fixture(autouse=True)
def _no_host_profile(monkeypatch, tmp_path):
    """Pin the suite to the uncalibrated state.

    A developer's real ``~/.cache/repro-host-profile.json`` must never
    leak measured constants into the deterministic planning tests —
    every test sees a nonexistent profile path unless it sets one up
    itself (the calibration tests override this).
    """
    monkeypatch.setenv(
        "REPRO_HOST_PROFILE", str(tmp_path / "no-host-profile.json")
    )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0xD1CE)


@pytest.fixture
def small_config() -> SortConfig:
    """A miniature 32-bit configuration: ∂̂=128, ∂=40, KPB=96."""
    return SortConfig(
        key_bits=32,
        value_bits=0,
        kpb=96,
        threads=32,
        kpt=3,
        local_threshold=128,
        merge_threshold=40,
        local_sort_configs=(16, 32, 64, 128),
    )


@pytest.fixture
def small_pair_config() -> SortConfig:
    """Miniature 32/32 pair configuration."""
    return SortConfig(
        key_bits=32,
        value_bits=32,
        kpb=64,
        threads=32,
        kpt=2,
        local_threshold=96,
        merge_threshold=32,
        local_sort_configs=(16, 32, 64, 96),
    )
