"""Tests for the shared trace/result dataclasses."""

from __future__ import annotations

import numpy as np
import pytest

from repro.types import (
    BlockStats,
    CountingPassTrace,
    LocalConfigStats,
    LocalSortTrace,
    SortResult,
    SortTrace,
    TimeBreakdown,
)


def _pass(index=0, n_keys=1000, local=2, nxt=3):
    return CountingPassTrace(
        pass_index=index,
        n_keys=n_keys,
        n_buckets_in=1,
        n_blocks=4,
        n_subbuckets_nonempty=8,
        n_merged_buckets=1,
        n_local_buckets=local,
        n_next_buckets=nxt,
        block_stats=BlockStats(),
        key_bytes=4,
        value_bytes=0,
        avg_nonempty_per_block=8.0,
    )


def _local(index=0, keys=500, buckets=3, capacity=256):
    return LocalSortTrace(
        pass_index=index,
        per_config=(
            LocalConfigStats(
                capacity=capacity,
                n_buckets=buckets,
                total_keys=keys,
                provisioned_keys=buckets * capacity,
                avg_remaining_digits=2.0,
            ),
        ),
        key_bytes=4,
        value_bytes=0,
    )


class TestTraceProperties:
    def test_counting_totals(self):
        trace = SortTrace(
            n=2000, key_bits=32, value_bits=0,
            counting_passes=(_pass(0, 2000), _pass(1, 800)),
            local_sorts=(_local(0, 1200), _local(1, 800)),
            finished_early=True, final_buffer_index=0,
        )
        assert trace.num_counting_passes == 2
        assert trace.total_counting_keys == 2800
        assert trace.total_local_keys == 2000
        assert trace.max_live_buckets == 5

    def test_local_trace_aggregates(self):
        t = _local(keys=500, buckets=3, capacity=256)
        assert t.total_keys == 500
        assert t.total_buckets == 3
        assert t.provisioned_keys == 768
        assert t.kernel_launch_count == 1

    def test_counting_pass_launches_constant(self):
        # §4.2: three launches per pass regardless of bucket counts.
        assert _pass(local=0, nxt=0).kernel_launch_count == 3
        assert _pass(local=500, nxt=500).kernel_launch_count == 3


class TestTimeBreakdown:
    def test_total_sums_components(self):
        b = TimeBreakdown(
            histogram=1.0, scatter=2.0, local_sort=3.0,
            bucket_management=0.25, launch_overhead=0.75,
        )
        assert b.total == pytest.approx(7.0)

    def test_defaults_zero(self):
        assert TimeBreakdown().total == 0.0


class TestSortResult:
    def test_sorted_bytes_keys_only(self):
        r = SortResult(keys=np.zeros(10, dtype=np.uint32))
        assert r.sorted_bytes() == 40
        assert r.n == 10

    def test_sorted_bytes_pairs(self):
        r = SortResult(
            keys=np.zeros(10, dtype=np.uint64),
            values=np.zeros(10, dtype=np.uint64),
        )
        assert r.sorted_bytes() == 160

    def test_sorting_rate(self):
        r = SortResult(
            keys=np.zeros(1000, dtype=np.uint32), simulated_seconds=2.0
        )
        assert r.sorting_rate() == pytest.approx(2000.0)

    def test_zero_time_rate_is_inf(self):
        r = SortResult(keys=np.zeros(4, dtype=np.uint32))
        assert r.sorting_rate() == float("inf")
