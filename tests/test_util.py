"""Tests for the internal NumPy helpers."""

from __future__ import annotations

import numpy as np

from repro._util import (
    as_uint,
    concatenated_aranges,
    expected_max_multinomial,
    is_sorted,
    run_lengths,
    segment_ids_from_sizes,
)


class TestConcatenatedAranges:
    def test_basic(self):
        out = concatenated_aranges(np.array([2, 0, 3]))
        assert out.tolist() == [0, 1, 0, 1, 2]

    def test_empty(self):
        assert concatenated_aranges(np.array([], dtype=np.int64)).size == 0

    def test_all_zero(self):
        assert concatenated_aranges(np.array([0, 0, 0])).size == 0

    def test_single(self):
        assert concatenated_aranges(np.array([4])).tolist() == [0, 1, 2, 3]

    def test_leading_zero(self):
        out = concatenated_aranges(np.array([0, 3]))
        assert out.tolist() == [0, 1, 2]

    def test_trailing_zero(self):
        out = concatenated_aranges(np.array([3, 0]))
        assert out.tolist() == [0, 1, 2]

    def test_matches_reference(self):
        rng = np.random.default_rng(1)
        sizes = rng.integers(0, 7, size=50)
        expected = np.concatenate(
            [np.arange(s) for s in sizes] or [np.empty(0, dtype=np.int64)]
        )
        assert concatenated_aranges(sizes).tolist() == expected.tolist()


class TestSegmentIds:
    def test_basic(self):
        out = segment_ids_from_sizes(np.array([2, 0, 3]))
        assert out.tolist() == [0, 0, 2, 2, 2]

    def test_empty(self):
        assert segment_ids_from_sizes(np.array([], dtype=np.int64)).size == 0

    def test_parallel_with_aranges(self):
        sizes = np.array([3, 1, 0, 2])
        assert (
            segment_ids_from_sizes(sizes).size
            == concatenated_aranges(sizes).size
        )


class TestRunLengths:
    def test_basic(self):
        values, lengths = run_lengths(np.array([5, 5, 2, 2, 2, 7]))
        assert values.tolist() == [5, 2, 7]
        assert lengths.tolist() == [2, 3, 1]

    def test_empty(self):
        values, lengths = run_lengths(np.array([]))
        assert values.size == 0
        assert lengths.size == 0

    def test_single_run(self):
        values, lengths = run_lengths(np.full(10, 3))
        assert values.tolist() == [3]
        assert lengths.tolist() == [10]

    def test_lengths_sum_to_total(self):
        rng = np.random.default_rng(2)
        data = rng.integers(0, 3, 200)
        _, lengths = run_lengths(data)
        assert lengths.sum() == data.size


class TestExpectedMaxMultinomial:
    def test_one_bin_is_exact(self):
        assert expected_max_multinomial(32, 1) == 32.0

    def test_zero_balls(self):
        assert expected_max_multinomial(0, 4) == 0.0

    def test_monotone_decreasing_in_bins(self):
        values = [expected_max_multinomial(32, q) for q in (1, 2, 4, 8, 64)]
        assert values == sorted(values, reverse=True)

    def test_never_exceeds_balls(self):
        for bins in (1, 2, 3, 100):
            assert expected_max_multinomial(8, bins) <= 8.0

    def test_at_least_mean(self):
        assert expected_max_multinomial(32, 4) >= 8.0


class TestIsSorted:
    def test_sorted(self):
        assert is_sorted(np.array([1, 2, 2, 3]))

    def test_unsorted(self):
        assert not is_sorted(np.array([2, 1]))

    def test_empty_and_single(self):
        assert is_sorted(np.array([]))
        assert is_sorted(np.array([7]))


class TestAsUint:
    def test_int32(self):
        out = as_uint(np.array([-1], dtype=np.int32))
        assert out.dtype == np.uint32
        assert out[0] == 0xFFFFFFFF

    def test_float64(self):
        out = as_uint(np.array([1.0], dtype=np.float64))
        assert out.dtype == np.uint64


class TestNarrowUintDtype:
    def test_boundaries(self):
        from repro._util import narrow_uint_dtype

        assert narrow_uint_dtype(255) == np.uint8
        assert narrow_uint_dtype(256) == np.uint16
        assert narrow_uint_dtype(2**16 - 1) == np.uint16
        assert narrow_uint_dtype(2**16) == np.uint32
        assert narrow_uint_dtype(2**32) == np.uint64


class TestCoalesceSpans:
    def test_all_empty_buckets(self):
        from repro._util import coalesce_spans

        starts, stops, lo, hi = coalesce_spans(
            np.array([5, 9]), np.array([0, 0])
        )
        assert starts.size == stops.size == lo.size == hi.size == 0

    def test_mixed_layout(self):
        from repro._util import coalesce_spans

        offsets = np.array([0, 30, 30, 100, 130])
        sizes = np.array([30, 0, 40, 30, 10])
        starts, stops, lo, hi = coalesce_spans(offsets, sizes)
        assert starts.tolist() == [0, 100]
        assert stops.tolist() == [70, 140]
        assert lo.tolist() == [0, 3]
        assert hi.tolist() == [2, 4]


class TestEvenBounds:
    def test_exact_division(self):
        from repro._util import even_bounds

        assert even_bounds(12, 4).tolist() == [0, 3, 6, 9, 12]

    def test_remainder_spread_and_monotonic(self):
        from repro._util import even_bounds

        bounds = even_bounds(10, 3)
        assert bounds[0] == 0 and bounds[-1] == 10
        sizes = np.diff(bounds)
        assert int(sizes.sum()) == 10
        assert int(sizes.max()) - int(sizes.min()) <= 1

    def test_more_parts_than_items(self):
        from repro._util import even_bounds

        bounds = even_bounds(2, 5)
        assert bounds[0] == 0 and bounds[-1] == 2
        assert np.all(np.diff(bounds) >= 0)
