"""Tests for the radix/digit geometry (§2.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.digits import DigitGeometry, extract_digit, extract_digit_lsd
from repro.errors import ConfigurationError


class TestGeometry:
    def test_8bit_digits_32bit_keys(self):
        g = DigitGeometry(32, 8)
        assert g.num_digits == 4
        assert g.radix == 256

    def test_8bit_digits_64bit_keys(self):
        # §6.1: 8 passes for 64-bit keys.
        g = DigitGeometry(64, 8)
        assert g.num_digits == 8

    def test_cub_5bit_geometry(self):
        # §6.1: "13 versus eight sorting passes" and "from seven to only
        # four" — CUB's 5-bit digits give 7/13 passes.
        assert DigitGeometry(32, 5).num_digits == 7
        assert DigitGeometry(64, 5).num_digits == 13

    def test_narrow_trailing_digit(self):
        # Leading digits stay full width; the remainder lands at the end.
        g = DigitGeometry(32, 5)
        assert g.width_for(0) == 5
        assert g.width_for(6) == 2
        assert g.shift_for(0) == 27
        assert g.shift_for(6) == 0

    def test_shifts_decrease_to_zero(self):
        g = DigitGeometry(32, 8)
        assert [g.shift_for(i) for i in range(4)] == [24, 16, 8, 0]

    def test_remaining_digits(self):
        g = DigitGeometry(32, 8)
        assert g.remaining_digits(0) == 4
        assert g.remaining_digits(3) == 1

    def test_remaining_bits_exact_division(self):
        g = DigitGeometry(32, 8)
        assert g.remaining_bits(0) == 32
        assert g.remaining_bits(2) == 16
        assert g.remaining_bits(4) == 0

    def test_remaining_bits_narrow_trailing(self):
        g = DigitGeometry(32, 5)
        assert g.remaining_bits(0) == 32
        assert g.remaining_bits(1) == 27
        assert g.remaining_bits(6) == 2

    def test_invalid_key_bits(self):
        with pytest.raises(ConfigurationError):
            DigitGeometry(48, 8)

    def test_invalid_digit_index(self):
        g = DigitGeometry(32, 8)
        with pytest.raises(ConfigurationError):
            g.shift_for(4)


class TestExtraction:
    def test_msd_digit_values(self):
        g = DigitGeometry(32, 8)
        keys = np.array([0xAABBCCDD], dtype=np.uint32)
        assert extract_digit(keys, g, 0)[0] == 0xAA
        assert extract_digit(keys, g, 1)[0] == 0xBB
        assert extract_digit(keys, g, 2)[0] == 0xCC
        assert extract_digit(keys, g, 3)[0] == 0xDD

    def test_lsd_is_reversed_msd(self):
        g = DigitGeometry(32, 8)
        keys = np.array([0xAABBCCDD], dtype=np.uint32)
        assert extract_digit_lsd(keys, g, 0)[0] == 0xDD
        assert extract_digit_lsd(keys, g, 3)[0] == 0xAA

    def test_returns_int64(self, rng):
        g = DigitGeometry(64, 8)
        keys = rng.integers(0, 2**64, 100, dtype=np.uint64)
        digits = extract_digit(keys, g, 0)
        assert digits.dtype == np.int64
        assert digits.min() >= 0
        assert digits.max() < 256

    def test_digit_concatenation_reconstructs_key(self, rng):
        g = DigitGeometry(32, 8)
        keys = rng.integers(0, 2**32, 50, dtype=np.uint64).astype(np.uint32)
        rebuilt = np.zeros_like(keys, dtype=np.uint64)
        for i in range(g.num_digits):
            rebuilt = (rebuilt << np.uint64(8)) | extract_digit(
                keys, g, i
            ).astype(np.uint64)
        assert np.array_equal(rebuilt.astype(np.uint32), keys)

    def test_narrow_trailing_digit_mask(self):
        g = DigitGeometry(32, 5)
        keys = np.array([0xFFFFFFFF], dtype=np.uint32)
        assert extract_digit(keys, g, 6)[0] == 0b11
        assert extract_digit(keys, g, 0)[0] == 0b11111

    def test_sorting_by_all_digits_sorts_keys(self, rng):
        # MSD-lexicographic digit order must equal numeric order.
        g = DigitGeometry(32, 8)
        keys = rng.integers(0, 2**32, 500, dtype=np.uint64).astype(np.uint32)
        tuples = np.stack(
            [extract_digit(keys, g, i) for i in range(g.num_digits)]
        )
        order = np.lexsort(tuples[::-1])
        assert np.array_equal(keys[order], np.sort(keys))
