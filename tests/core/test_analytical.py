"""Tests for the §4.5 analytical model: bounds I1-I4 and memory M1-M5."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.analytical import AnalyticalModel
from repro.core.config import SortConfig
from repro.core.hybrid_sort import HybridRadixSorter
from repro.workloads import staircase_keys, uniform_keys, zipf_keys


@pytest.fixture
def model() -> AnalyticalModel:
    return AnalyticalModel(SortConfig.for_keys(32))


class TestBounds:
    def test_i1(self, model):
        assert model.max_counting_buckets(1_000_000) == 1_000_000 // 9216

    def test_i2(self, model):
        assert (
            model.max_buckets_unrefined(1_000_000)
            == 256 * (1_000_000 // 9216)
        )

    def test_i3_refinement(self, model):
        n = 1_000_000
        refined = 2 * n // 3000 + n // 9216
        assert model.max_buckets(n) == min(
            refined, model.max_buckets_unrefined(n)
        )

    def test_i3_never_exceeds_i2(self, model):
        for n in (10_000, 10**6, 10**8):
            assert model.max_buckets(n) <= model.max_buckets_unrefined(n)

    def test_i4(self, model):
        n = 1_000_000
        assert model.max_blocks(n) == n // 6912 + n // 9216

    def test_zero_input(self, model):
        assert model.max_buckets(0) == 0
        assert model.max_blocks(0) == 0


class TestMemoryModel:
    def test_paper_5_percent_claim(self):
        # §4.5: "for 32-bit keys ... the total amount of memory required
        # by M2 through M5 is bound by a mere 5% of M1" with
        # KPB = 6 912, ∂̂ = 9 216, ∂ = 3 000, r = 256.
        model = AnalyticalModel(SortConfig.for_keys(32))
        req = model.memory_requirements(500_000_000)
        assert req.overhead_fraction < 0.05

    def test_m1(self, model):
        req = model.memory_requirements(1000)
        assert req.input_and_aux == 2 * 1000 * 4

    def test_m1_for_pairs(self):
        model = AnalyticalModel(SortConfig.for_pairs(64, 64))
        req = model.memory_requirements(1000)
        assert req.input_and_aux == 2 * 1000 * 16

    def test_m2(self, model):
        n = 100_000
        req = model.memory_requirements(n)
        assert req.bucket_histograms == 4 * 256 * (n // 9216)

    def test_m3_m4_share_block_count(self, model):
        n = 1_000_000
        req = model.memory_requirements(n)
        blocks = n // 6912 + n // 9216
        assert req.block_histograms == 4 * 256 * blocks
        assert req.block_assignments == 2 * 16 * blocks

    def test_m5(self, model):
        n = 1_000_000
        req = model.memory_requirements(n)
        assert req.local_assignments == 12 * model.max_buckets(n)

    def test_total(self, model):
        req = model.memory_requirements(10_000)
        assert req.total_bytes == req.input_and_aux + req.overhead_bytes

    def test_overhead_fraction_roughly_scale_invariant(self, model):
        f1 = model.memory_requirements(10**6).overhead_fraction
        f2 = model.memory_requirements(10**8).overhead_fraction
        assert f1 == pytest.approx(f2, rel=0.05)


class TestPassArithmetic:
    def test_worst_case_passes(self, model):
        assert model.counting_passes_worst_case() == 4

    def test_uniform_expected_passes_paper_scale(self, model):
        # 500 M uniform keys: 2 counting passes before ∂̂ is reached.
        assert model.expected_counting_passes_uniform(500_000_000) == 2

    def test_transfer_reduction_32bit(self, model):
        # §6.1: "reducing from seven to only four sorting passes"
        # -> 1.75x fewer transfers than CUB.
        assert model.transfer_reduction_vs_lsd(5) == pytest.approx(1.75)

    def test_transfer_reduction_64bit(self):
        # §6.1: "13 versus eight sorting passes" -> 1.625x.
        model = AnalyticalModel(SortConfig.for_keys(64))
        assert model.transfer_reduction_vs_lsd(5) == pytest.approx(1.625)

    def test_reduction_at_least_1_6(self):
        # §1: "reduces the number of sorting passes ... by a factor of at
        # least 1.6".
        for key_bits in (32, 64):
            model = AnalyticalModel(SortConfig.for_keys(key_bits))
            assert model.transfer_reduction_vs_lsd(5) >= 1.6


class TestTraceValidation:
    @pytest.mark.parametrize(
        "make_keys",
        [
            lambda rng: uniform_keys(20_000, 32, rng),
            lambda rng: staircase_keys(20_000, 32, steps=9),
            lambda rng: zipf_keys(20_000, 32, rng=rng),
        ],
        ids=["uniform", "staircase", "zipf"],
    )
    def test_real_traces_respect_bounds(self, rng, small_config, make_keys):
        keys = make_keys(rng)
        result = HybridRadixSorter(config=small_config).sort(keys)
        model = AnalyticalModel(small_config)
        assert model.validate_trace(result.trace) == []

    def test_no_merging_respects_i2(self, rng):
        config = SortConfig(
            key_bits=32, kpb=96, threads=32, kpt=3,
            local_threshold=128, merge_threshold=40,
            local_sort_configs=(16, 32, 64, 128),
            use_bucket_merging=False,
        )
        keys = staircase_keys(20_000, 32, steps=23)
        result = HybridRadixSorter(config=config).sort(keys)
        assert np.array_equal(result.keys, np.sort(keys))
        model = AnalyticalModel(config)
        assert model.validate_trace(result.trace) == []
