"""Tests for the key-scattering engine (§4.4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.scatter import (
    BlockScatterEngine,
    lookahead_ops_per_key,
)
from repro.errors import ConfigurationError


def _scatter(keys, radix=4, kpb=16, seed=0xB10C, values=None, **kwargs):
    keys = np.asarray(keys, dtype=np.uint32)
    digits = (keys % radix).astype(np.int64)
    hist = np.bincount(digits, minlength=radix)
    sub_offsets = np.zeros(radix, dtype=np.int64)
    np.cumsum(hist[:-1], out=sub_offsets[1:])
    out = np.empty_like(keys)
    out_values = np.empty_like(values) if values is not None else None
    engine = BlockScatterEngine(radix=radix, completion_seed=seed, **kwargs)
    engine.scatter_bucket(
        keys, digits, sub_offsets, out, kpb, values=values, out_values=out_values
    )
    return out, out_values, sub_offsets, hist, engine


class TestPartitionValidity:
    def test_subbuckets_hold_right_digits(self, rng):
        keys = rng.integers(0, 1000, 500, dtype=np.uint64).astype(np.uint32)
        out, _, offsets, hist, _ = _scatter(keys, radix=4, kpb=32)
        for d in range(4):
            lo, hi = int(offsets[d]), int(offsets[d] + hist[d])
            assert np.all(out[lo:hi] % 4 == d)

    def test_output_is_permutation(self, rng):
        keys = rng.integers(0, 1000, 333, dtype=np.uint64).astype(np.uint32)
        out, _, _, _, _ = _scatter(keys, radix=8, kpb=50)
        assert np.array_equal(np.sort(out), np.sort(keys))

    def test_values_follow_keys(self, rng):
        keys = rng.integers(0, 256, 200, dtype=np.uint64).astype(np.uint32)
        values = np.arange(200, dtype=np.uint32)
        out, out_values, _, _, _ = _scatter(
            keys, radix=4, kpb=16, values=values
        )
        # Each carried value must point back at its original key.
        assert np.array_equal(keys[out_values], out)


class TestNonStability:
    """The hybrid sort deliberately drops stability (§4.1, §4.3)."""

    def test_different_completion_orders_permute_within_subbuckets(self, rng):
        keys = rng.integers(0, 10_000, 400, dtype=np.uint64).astype(np.uint32)
        out_a, _, offsets, hist, _ = _scatter(keys, radix=4, kpb=16, seed=1)
        out_b, _, _, _, _ = _scatter(keys, radix=4, kpb=16, seed=2)
        # Same multiset inside every sub-bucket...
        for d in range(4):
            lo, hi = int(offsets[d]), int(offsets[d] + hist[d])
            assert np.array_equal(
                np.sort(out_a[lo:hi]), np.sort(out_b[lo:hi])
            )
        # ... but not the same order overall (out-of-order completion).
        assert not np.array_equal(out_a, out_b)

    def test_single_block_is_stable(self, rng):
        # With one block there is no completion race: stable result.
        keys = rng.integers(0, 100, 50, dtype=np.uint64).astype(np.uint32)
        out, _, _, _, _ = _scatter(keys, radix=4, kpb=64)
        digits = keys % 4
        expected = keys[np.argsort(digits, kind="stable")]
        assert np.array_equal(out, expected)


class TestOperationCounts:
    def test_one_reservation_per_nonempty_subbucket_per_block(self, rng):
        keys = rng.integers(0, 2**32, 320, dtype=np.uint64).astype(np.uint32)
        _, _, _, _, engine = _scatter(keys, radix=4, kpb=32)
        # 10 blocks x <=4 non-empty sub-buckets.
        assert engine.stats.blocks_processed == 10
        assert engine.stats.device_reservations <= 40

    def test_uniform_blocks_do_not_use_lookahead(self, rng):
        keys = rng.integers(0, 2**32, 320, dtype=np.uint64).astype(np.uint32)
        _, _, _, _, engine = _scatter(keys, radix=4, kpb=32)
        # Uniform over 4 digits: max fraction ~0.25 < 0.5 threshold.
        assert engine.stats.lookahead_blocks == 0
        assert engine.stats.shared_atomic_ops == 320

    def test_constant_blocks_use_lookahead(self):
        keys = np.zeros(300, dtype=np.uint32)
        _, _, _, _, engine = _scatter(keys, radix=4, kpb=100)
        assert engine.stats.lookahead_blocks == 3
        # Look-ahead of two: one op per run of three keys, so each
        # 100-key block needs ceil(100/3) = 34 reservations.
        assert engine.stats.shared_atomic_ops == 3 * 34

    def test_lookahead_disabled(self):
        keys = np.zeros(300, dtype=np.uint32)
        _, _, _, _, engine = _scatter(
            keys, radix=4, kpb=100, use_lookahead=False
        )
        assert engine.stats.lookahead_blocks == 0
        assert engine.stats.shared_atomic_ops == 300


class TestLookaheadOps:
    def test_constant_stream(self):
        digits = np.zeros(3000, dtype=np.int64)
        assert lookahead_ops_per_key(digits, depth=2) == pytest.approx(1 / 3)

    def test_alternating_stream_no_combining(self):
        digits = np.tile([0, 1], 1500).astype(np.int64)
        assert lookahead_ops_per_key(digits, depth=2) == pytest.approx(1.0)

    def test_depth_zero_is_one_op_per_key(self, rng):
        digits = rng.integers(0, 4, 1000)
        assert lookahead_ops_per_key(digits, depth=0) == pytest.approx(1.0)

    def test_deeper_lookahead_combines_more(self):
        digits = np.zeros(1200, dtype=np.int64)
        d2 = lookahead_ops_per_key(digits, depth=2)
        d5 = lookahead_ops_per_key(digits, depth=5)
        assert d5 < d2

    def test_invalid_depth(self):
        with pytest.raises(ConfigurationError):
            lookahead_ops_per_key(np.zeros(10, dtype=np.int64), depth=-1)

    def test_empty(self):
        assert lookahead_ops_per_key(np.empty(0, dtype=np.int64)) == 1.0


class TestValidation:
    def test_radix_too_small(self):
        with pytest.raises(ConfigurationError):
            BlockScatterEngine(radix=1)

    def test_mismatched_digits(self):
        engine = BlockScatterEngine(radix=4)
        keys = np.zeros(10, dtype=np.uint32)
        with pytest.raises(ConfigurationError):
            engine.scatter_bucket(
                keys,
                np.zeros(5, dtype=np.int64),
                np.zeros(4, dtype=np.int64),
                np.empty_like(keys),
                kpb=8,
            )

    def test_values_require_output(self):
        engine = BlockScatterEngine(radix=4)
        keys = np.zeros(10, dtype=np.uint32)
        with pytest.raises(ConfigurationError):
            engine.scatter_bucket(
                keys,
                np.zeros(10, dtype=np.int64),
                np.zeros(4, dtype=np.int64),
                np.empty_like(keys),
                kpb=8,
                values=np.zeros(10, dtype=np.uint32),
            )
