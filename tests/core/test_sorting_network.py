"""Tests for the 9-input sorting network (§4.3)."""

from __future__ import annotations

from itertools import product

import numpy as np
import pytest

from repro.core.sorting_network import (
    NETWORK_9,
    batch_sort_network,
    comparator_count,
    sort9,
)
from repro.errors import ConfigurationError


class TestNetworkStructure:
    def test_25_comparators(self):
        # §4.3: "a sorting network that involves 25 comparisons".
        assert len(NETWORK_9) == 25
        assert comparator_count() == 25

    def test_indices_in_range(self):
        for lo, hi in NETWORK_9:
            assert 0 <= lo < 9
            assert 0 <= hi < 9
            assert lo != hi

    def test_comparators_ordered(self):
        # Compare-exchange pairs must be (low, high) oriented.
        for lo, hi in NETWORK_9:
            assert lo < hi

    def test_unknown_width_rejected(self):
        with pytest.raises(ConfigurationError):
            comparator_count(8)


class TestZeroOnePrinciple:
    def test_all_512_binary_patterns(self):
        # A comparator network sorts all inputs iff it sorts every 0/1
        # sequence (Knuth's 0/1 principle) — exhaustive proof.
        for bits in product([0, 1], repeat=9):
            assert sort9(list(bits)) == sorted(bits)


class TestScalarSort:
    def test_random_values(self, rng):
        for _ in range(50):
            values = rng.integers(0, 256, 9).tolist()
            assert sort9(values) == sorted(values)

    def test_requires_nine(self):
        with pytest.raises(ConfigurationError):
            sort9([1, 2, 3])


class TestBatchSort:
    def test_matches_numpy(self, rng):
        rows = rng.integers(0, 256, size=(500, 9))
        assert np.array_equal(
            batch_sort_network(rows), np.sort(rows, axis=1)
        )

    def test_input_not_mutated(self, rng):
        rows = rng.integers(0, 256, size=(10, 9))
        copy = rows.copy()
        batch_sort_network(rows)
        assert np.array_equal(rows, copy)

    def test_duplicates_heavy(self, rng):
        rows = rng.integers(0, 2, size=(200, 9))
        assert np.array_equal(
            batch_sort_network(rows), np.sort(rows, axis=1)
        )

    def test_bad_shape(self):
        with pytest.raises(ConfigurationError):
            batch_sort_network(np.zeros((4, 8)))
