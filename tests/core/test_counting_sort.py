"""Tests for the counting-sort pass: fast engine vs faithful engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.counting_sort import (
    block_level_counting_sort,
    counting_sort_pass,
)
from repro.core.digits import extract_digit
from repro.errors import ConfigurationError


def _run_pass(keys, config, digit_index=0, offsets=None, sizes=None,
              values=None):
    src = np.asarray(keys, dtype=np.uint32)
    dst = np.zeros_like(src)
    if offsets is None:
        offsets = np.array([0], dtype=np.int64)
        sizes = np.array([src.size], dtype=np.int64)
    src_v = dst_v = None
    if values is not None:
        src_v = np.asarray(values)
        dst_v = np.zeros_like(src_v)
    out = counting_sort_pass(
        src, dst,
        np.asarray(offsets, dtype=np.int64),
        np.asarray(sizes, dtype=np.int64),
        config, digit_index,
        src_values=src_v, dst_values=dst_v,
    )
    return dst, dst_v, out


class TestFastEngine:
    def test_partitions_by_msd(self, rng, small_config):
        keys = rng.integers(0, 2**32, 1000, dtype=np.uint64).astype(np.uint32)
        dst, _, out = _run_pass(keys, small_config)
        digits = extract_digit(dst, small_config.geometry, 0)
        assert np.all(digits[:-1] <= digits[1:])
        assert np.array_equal(np.sort(dst), np.sort(keys))

    def test_histogram_matches(self, rng, small_config):
        keys = rng.integers(0, 2**32, 500, dtype=np.uint64).astype(np.uint32)
        _, _, out = _run_pass(keys, small_config)
        digits = extract_digit(keys, small_config.geometry, 0)
        assert np.array_equal(out.counts[0], np.bincount(digits, minlength=256))

    def test_stable_within_bucket(self, rng, small_config):
        # The fast engine is per-bucket stable (the faithful engine is
        # what exhibits the non-stability; equivalence is multiset-level).
        keys = rng.integers(0, 2**32, 300, dtype=np.uint64).astype(np.uint32)
        values = np.arange(300, dtype=np.uint32)
        dst, dst_v, _ = _run_pass(keys, small_config, values=values)
        digits = extract_digit(keys, small_config.geometry, 0)
        order = np.argsort(digits, kind="stable")
        assert np.array_equal(dst, keys[order])
        assert np.array_equal(dst_v, values[order])

    def test_multiple_buckets_partition_independently(self, rng, small_config):
        keys = rng.integers(0, 2**32, 600, dtype=np.uint64).astype(np.uint32)
        offsets = np.array([0, 200])
        sizes = np.array([200, 400])
        dst, _, out = _run_pass(
            keys, small_config, digit_index=1, offsets=offsets, sizes=sizes
        )
        for off, size in zip(offsets, sizes):
            segment = dst[off : off + size]
            digits = extract_digit(segment, small_config.geometry, 1)
            assert np.all(digits[:-1] <= digits[1:])
            assert np.array_equal(
                np.sort(segment), np.sort(keys[off : off + size])
            )
        assert out.counts.shape == (2, 256)

    def test_block_count_r4(self, rng, small_config):
        keys = rng.integers(0, 2**32, 500, dtype=np.uint64).astype(np.uint32)
        _, _, out = _run_pass(keys, small_config)
        assert out.n_blocks == -(-500 // small_config.kpb)

    def test_untouched_region_left_alone(self, rng, small_config):
        keys = rng.integers(0, 2**32, 300, dtype=np.uint64).astype(np.uint32)
        src = keys.copy()
        dst = np.zeros_like(src)
        counting_sort_pass(
            src, dst,
            np.array([100], dtype=np.int64),
            np.array([100], dtype=np.int64),
            small_config, 0,
        )
        assert np.all(dst[:100] == 0)
        assert np.all(dst[200:] == 0)

    def test_empty_pass(self, small_config):
        keys = np.zeros(10, dtype=np.uint32)
        dst, _, out = _run_pass(
            keys, small_config, offsets=np.empty(0), sizes=np.empty(0)
        )
        assert out.n_keys == 0
        assert out.n_blocks == 0

    def test_mismatched_arrays_rejected(self, small_config):
        with pytest.raises(ConfigurationError):
            counting_sort_pass(
                np.zeros(4, dtype=np.uint32),
                np.zeros(4, dtype=np.uint32),
                np.array([0]),
                np.array([4, 4]),
                small_config,
                0,
            )


class TestPassStatistics:
    def test_constant_input_stats(self, small_config):
        keys = np.zeros(1000, dtype=np.uint32)
        _, _, out = _run_pass(keys, small_config)
        assert out.stats.warp_conflict == pytest.approx(32.0)
        assert out.stats.max_digit_fraction == pytest.approx(1.0)
        assert out.stats.lookahead_active_fraction == pytest.approx(1.0)
        assert out.stats.scatter_ops_per_key == pytest.approx(1 / 3, rel=0.01)
        assert out.stats.hist_ops_per_key == pytest.approx(1 / 9, rel=0.01)

    def test_uniform_input_stats(self, rng, small_config):
        keys = rng.integers(0, 2**32, 10_000, dtype=np.uint64).astype(np.uint32)
        _, _, out = _run_pass(keys, small_config)
        assert out.stats.warp_conflict < 4.0
        assert out.stats.max_digit_fraction < 0.05
        assert out.stats.lookahead_active_fraction == 0.0
        assert out.stats.scatter_ops_per_key == 1.0

    def test_thread_reduction_switch(self, rng, small_config):
        keys = np.zeros(1000, dtype=np.uint32)
        no_tr = small_config.with_ablations(thread_reduction=False)
        _, _, out = _run_pass(keys, no_tr)
        assert out.stats.hist_ops_per_key == 1.0

    def test_lookahead_switch(self, small_config):
        keys = np.zeros(1000, dtype=np.uint32)
        no_la = small_config.with_ablations(lookahead=False)
        _, _, out = _run_pass(keys, no_la)
        assert out.stats.scatter_ops_per_key == 1.0
        assert out.stats.lookahead_active_fraction == 0.0

    def test_stats_lazy_when_both_sampling_switches_off(self, rng, small_config):
        from repro.core.counting_sort import _LazyBlockStats

        keys = rng.integers(0, 2**32, 1000, dtype=np.uint64).astype(np.uint32)
        both_off = small_config.with_ablations(
            lookahead=False, thread_reduction=False
        )
        _, _, lazy_out = _run_pass(keys, both_off)
        assert isinstance(lazy_out.stats, _LazyBlockStats)
        # First access forces the measurement; values match an eager run
        # with the same switches (only sampling *scheduling* changed).
        _, _, eager_like = _run_pass(keys, both_off)
        assert lazy_out.stats.hist_ops_per_key == 1.0
        assert lazy_out.stats.scatter_ops_per_key == 1.0
        assert (
            lazy_out.stats.warp_conflict
            == eager_like.stats.warp_conflict
        )
        assert (
            lazy_out.stats.max_digit_fraction
            == eager_like.stats.max_digit_fraction
        )

    def test_no_rng_constructed_when_stats_stay_lazy(
        self, rng, small_config, monkeypatch
    ):
        # With both sampling optimisations off, a pass whose stats are
        # never read must not even construct its default RNG.
        keys = rng.integers(0, 2**32, 1000, dtype=np.uint64).astype(np.uint32)
        both_off = small_config.with_ablations(
            lookahead=False, thread_reduction=False
        )
        constructed = []
        real = np.random.default_rng

        def counting(*args, **kwargs):
            constructed.append(args)
            return real(*args, **kwargs)

        monkeypatch.setattr(np.random, "default_rng", counting)
        _, _, out = _run_pass(keys, both_off)
        assert constructed == []
        # Reading the stats forces exactly one construction.
        out.stats.warp_conflict
        assert len(constructed) == 1
        out.stats.max_digit_fraction
        assert len(constructed) == 1

    def test_caller_rng_still_honoured_by_lazy_stats(self, rng, small_config):
        keys = rng.integers(0, 2**32, 1000, dtype=np.uint64).astype(np.uint32)
        both_off = small_config.with_ablations(
            lookahead=False, thread_reduction=False
        )
        src = keys.copy()
        dst = np.zeros_like(src)
        out = counting_sort_pass(
            src, dst,
            np.array([0], dtype=np.int64),
            np.array([src.size], dtype=np.int64),
            both_off, 0, rng=np.random.default_rng(99),
        )
        dst2 = np.zeros_like(src)
        out2 = counting_sort_pass(
            src, dst2,
            np.array([0], dtype=np.int64),
            np.array([src.size], dtype=np.int64),
            both_off, 0, rng=np.random.default_rng(99),
        )
        assert out.stats.warp_conflict == out2.stats.warp_conflict


class TestEngineEquivalence:
    """Fast and faithful engines agree on bucket structure (DESIGN §5)."""

    def test_same_subbucket_contents(self, rng, small_config):
        keys = rng.integers(0, 2**32, 700, dtype=np.uint64).astype(np.uint32)
        dst_fast, _, out = _run_pass(keys, small_config)
        out_faithful, _, hist = block_level_counting_sort(
            keys, small_config, 0
        )
        assert np.array_equal(hist, out.counts[0])
        bounds = np.concatenate(([0], np.cumsum(hist)))
        for d in range(256):
            lo, hi = bounds[d], bounds[d + 1]
            assert np.array_equal(
                np.sort(dst_fast[lo:hi]), np.sort(out_faithful[lo:hi])
            )

    def test_faithful_engine_values(self, rng, small_config):
        keys = rng.integers(0, 2**32, 300, dtype=np.uint64).astype(np.uint32)
        values = np.arange(300, dtype=np.uint32)
        out_keys, out_values, _ = block_level_counting_sort(
            keys, small_config, 0, values=values
        )
        assert np.array_equal(keys[out_values], out_keys)

    def test_faithful_engine_not_stable_with_many_blocks(self, rng, small_config):
        # Non-stability (§4.1): different completion seeds permute keys
        # within sub-buckets.
        keys = rng.integers(0, 2**32, 2000, dtype=np.uint64).astype(np.uint32)
        a, _, _ = block_level_counting_sort(
            keys, small_config, 0, completion_seed=1
        )
        b, _, _ = block_level_counting_sort(
            keys, small_config, 0, completion_seed=2
        )
        assert not np.array_equal(a, b)
        assert np.array_equal(np.sort(a), np.sort(b))
