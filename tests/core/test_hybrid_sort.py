"""Tests for the hybrid radix sorter driver (§4.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hybrid_sort import HybridRadixSorter
from repro.errors import ConfigurationError
from repro.gpu.device import SimulatedGPU
from repro.workloads import constant_keys, staircase_keys, uniform_keys


def _sorter(config):
    return HybridRadixSorter(config=config)


class TestCorrectness:
    def test_uniform(self, rng, small_config):
        keys = uniform_keys(5000, 32, rng)
        result = _sorter(small_config).sort(keys)
        assert np.array_equal(result.keys, np.sort(keys))

    def test_constant(self, small_config):
        keys = constant_keys(3000, 32, value=7)
        result = _sorter(small_config).sort(keys)
        assert np.array_equal(result.keys, keys)

    def test_staircase(self, small_config):
        keys = staircase_keys(4000, 32, steps=7)
        result = _sorter(small_config).sort(keys)
        assert np.array_equal(result.keys, np.sort(keys))

    def test_presorted_and_reversed(self, rng, small_config):
        keys = np.sort(uniform_keys(3000, 32, rng))
        assert np.array_equal(_sorter(small_config).sort(keys).keys, keys)
        rev = keys[::-1].copy()
        assert np.array_equal(_sorter(small_config).sort(rev).keys, keys)

    def test_input_not_mutated(self, rng, small_config):
        keys = uniform_keys(2000, 32, rng)
        copy = keys.copy()
        _sorter(small_config).sort(keys)
        assert np.array_equal(keys, copy)

    def test_empty(self, small_config):
        result = _sorter(small_config).sort(np.empty(0, dtype=np.uint32))
        assert result.keys.size == 0
        assert result.trace.finished_early

    def test_single(self, small_config):
        result = _sorter(small_config).sort(np.array([5], dtype=np.uint32))
        assert result.keys.tolist() == [5]

    def test_duplicates_heavy(self, rng, small_config):
        keys = rng.integers(0, 4, 5000, dtype=np.uint64).astype(np.uint32)
        result = _sorter(small_config).sort(keys)
        assert np.array_equal(result.keys, np.sort(keys))

    @pytest.mark.parametrize("n", [2, 127, 128, 129, 1000, 4097])
    def test_boundary_sizes(self, rng, small_config, n):
        keys = uniform_keys(n, 32, rng)
        result = _sorter(small_config).sort(keys)
        assert np.array_equal(result.keys, np.sort(keys))


class TestDtypes:
    def test_signed_int32(self, rng):
        keys = rng.integers(-(2**31), 2**31, 50_000, dtype=np.int64).astype(np.int32)
        result = HybridRadixSorter().sort(keys)
        assert np.array_equal(result.keys, np.sort(keys))

    def test_float32_with_negatives(self, rng):
        keys = rng.normal(0, 1e10, 50_000).astype(np.float32)
        result = HybridRadixSorter().sort(keys)
        assert np.array_equal(result.keys, np.sort(keys))

    def test_float64(self, rng):
        keys = rng.normal(0, 1e100, 50_000).astype(np.float64)
        result = HybridRadixSorter().sort(keys)
        assert np.array_equal(result.keys, np.sort(keys))

    def test_uint64(self, rng):
        keys = rng.integers(0, 2**64, 50_000, dtype=np.uint64)
        result = HybridRadixSorter().sort(keys)
        assert np.array_equal(result.keys, np.sort(keys))

    def test_config_layout_mismatch_rejected(self, rng, small_config):
        keys = rng.integers(0, 2**64, 100, dtype=np.uint64)
        with pytest.raises(ConfigurationError):
            _sorter(small_config).sort(keys)  # 32-bit config, 64-bit keys


class TestPairs:
    def test_values_permuted_with_keys(self, rng, small_pair_config):
        keys = uniform_keys(4000, 32, rng)
        values = np.arange(4000, dtype=np.uint32)
        result = _sorter(small_pair_config).sort(keys, values)
        assert np.array_equal(result.keys, np.sort(keys))
        assert np.array_equal(keys[result.values], result.keys)

    def test_duplicate_keys_values_form_permutation(self, rng, small_pair_config):
        keys = rng.integers(0, 16, 3000, dtype=np.uint64).astype(np.uint32)
        values = np.arange(3000, dtype=np.uint32)
        result = _sorter(small_pair_config).sort(keys, values)
        assert np.array_equal(np.sort(result.values), values)
        assert np.array_equal(keys[result.values], result.keys)

    def test_shape_mismatch_rejected(self, rng, small_pair_config):
        with pytest.raises(ConfigurationError):
            _sorter(small_pair_config).sort(
                np.zeros(10, dtype=np.uint32), np.zeros(5, dtype=np.uint32)
            )


class TestPassStructure:
    def test_uniform_structure(self, rng, small_config):
        # 5000 keys, ∂̂=128: pass 0 -> ~20-key buckets -> merged/local.
        keys = uniform_keys(5000, 32, rng)
        result = _sorter(small_config).sort(keys)
        trace = result.trace
        assert trace.num_counting_passes <= 2
        assert trace.finished_early
        assert trace.total_local_keys == 5000

    def test_constant_runs_all_passes(self, small_config):
        keys = constant_keys(2000, 32)
        trace = _sorter(small_config).sort(keys).trace
        assert trace.num_counting_passes == 4
        assert not trace.finished_early
        assert trace.total_local_keys == 0

    def test_tiny_input_single_local_sort(self, rng, small_config):
        keys = uniform_keys(100, 32, rng)
        trace = _sorter(small_config).sort(keys).trace
        assert trace.num_counting_passes == 0
        assert trace.finished_early
        assert trace.total_local_keys == 100

    def test_keys_conserved_per_pass(self, rng, small_config):
        keys = staircase_keys(6000, 32, steps=3)
        trace = _sorter(small_config).sort(keys).trace
        # Pass p processes exactly the keys still in counting buckets.
        assert trace.counting_passes[0].n_keys == 6000
        for prev, cur in zip(trace.counting_passes, trace.counting_passes[1:]):
            assert cur.n_keys <= prev.n_keys

    def test_final_buffer_rule(self, rng, small_config):
        # ⌈32/8⌉ = 4 digits (even): the original input memory holds the
        # result (§4.1's double-buffering rule).
        keys = uniform_keys(1000, 32, rng)
        trace = _sorter(small_config).sort(keys).trace
        assert trace.final_buffer_index == 0

    def test_merged_buckets_appear_for_tiny_subbuckets(self, rng, small_config):
        # 3000 uniform keys over 256 first-digit values: ~12-key
        # sub-buckets, well below ∂ = 40, so rule R3 must merge runs.
        keys = uniform_keys(3000, 32, rng)
        trace = _sorter(small_config).sort(keys).trace
        assert any(p.n_merged_buckets > 0 for p in trace.counting_passes)


class TestLaunchAccounting:
    def test_constant_launches_per_pass(self, rng, small_config):
        # §4.2: a constant number of kernel invocations per pass,
        # independent of the bucket count.
        device = SimulatedGPU()
        sorter = HybridRadixSorter(config=small_config, device=device)
        keys = staircase_keys(8000, 32, steps=50)
        result = sorter.sort(keys)
        max_configs = len(small_config.effective_configs)
        for p in range(result.trace.num_counting_passes):
            launches = device.launches_in_pass(p)
            counting = [
                l for l in launches if not l.name.startswith("local_sort")
            ]
            local = [l for l in launches if l.name.startswith("local_sort")]
            assert len(counting) == 3
            assert len(local) <= max_configs

    def test_launch_names(self, rng, small_config):
        device = SimulatedGPU()
        sorter = HybridRadixSorter(config=small_config, device=device)
        sorter.sort(uniform_keys(2000, 32, rng))
        names = set(device.counters.launches_by_name)
        assert "histogram" in names
        assert "scatter" in names
        assert "prefix_assign" in names


class TestSimulatedTiming:
    def test_positive_time(self, rng):
        keys = uniform_keys(100_000, 32, rng)
        result = HybridRadixSorter().sort(keys)
        assert result.simulated_seconds > 0
        assert result.breakdown.total == pytest.approx(
            result.simulated_seconds
        )

    def test_breakdown_components_nonnegative(self, rng):
        result = HybridRadixSorter().sort(uniform_keys(50_000, 32, rng))
        b = result.breakdown
        for part in (
            b.histogram, b.scatter, b.local_sort,
            b.bucket_management, b.launch_overhead,
        ):
            assert part >= 0.0

    def test_more_keys_take_longer(self, rng):
        small = HybridRadixSorter().sort(uniform_keys(100_000, 32, rng))
        large = HybridRadixSorter().sort(uniform_keys(400_000, 32, rng))
        assert large.simulated_seconds > small.simulated_seconds

    def test_sorting_rate_reported(self, rng):
        result = HybridRadixSorter().sort(uniform_keys(100_000, 32, rng))
        assert result.sorting_rate() == pytest.approx(
            result.keys.nbytes / result.simulated_seconds
        )
