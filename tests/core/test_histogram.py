"""Tests for the histogram kernels and their statistics (§4.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.histogram import (
    block_histograms,
    bucket_histograms,
    histogram_atomics_only,
    histogram_thread_reduction,
    max_digit_fraction,
    measure_warp_conflict,
    thread_reduction_ops_per_key,
)


class TestBucketHistograms:
    def test_matches_bincount_per_bucket(self, rng):
        digits = rng.integers(0, 16, 1000)
        segments = np.repeat(np.arange(4), 250)
        hist = bucket_histograms(digits, segments, 4, 16)
        for b in range(4):
            expected = np.bincount(digits[b * 250 : (b + 1) * 250], minlength=16)
            assert np.array_equal(hist[b], expected)

    def test_row_sums(self, rng):
        digits = rng.integers(0, 8, 300)
        segments = np.repeat(np.arange(3), 100)
        hist = bucket_histograms(digits, segments, 3, 8)
        assert hist.sum() == 300
        assert np.all(hist.sum(axis=1) == 100)


class TestBlockHistograms:
    def test_blocks_partition_global_histogram(self, rng):
        digits = rng.integers(0, 32, 1000)
        offsets = np.array([0, 400, 800])
        sizes = np.array([400, 400, 200])
        per_block = block_histograms(digits, offsets, sizes, 32)
        assert np.array_equal(
            per_block.sum(axis=0), np.bincount(digits, minlength=32)
        )

    def test_region_offset(self, rng):
        digits = rng.integers(0, 4, 100)
        per_block = block_histograms(
            digits, np.array([500]), np.array([100]), 4, region_offset=500
        )
        assert np.array_equal(per_block[0], np.bincount(digits, minlength=4))


class TestKernelEquivalence:
    """Both kernels must produce identical histograms (§4.3)."""

    def test_histograms_equal(self, rng):
        digits = rng.integers(0, 256, 5000)
        h1, ops1 = histogram_atomics_only(digits, 256)
        h2, ops2 = histogram_thread_reduction(digits, 256)
        assert np.array_equal(h1, h2)

    def test_atomics_only_ops_equal_keys(self, rng):
        digits = rng.integers(0, 256, 777)
        _, ops = histogram_atomics_only(digits, 256)
        assert ops == 777

    def test_thread_reduction_saves_ops_on_constant(self):
        # One atomicAdd per 9-key run when all digits are equal.
        digits = np.zeros(900, dtype=np.int64)
        _, ops = histogram_thread_reduction(digits, 256)
        assert ops == 100

    def test_thread_reduction_no_worse_than_keys(self, rng):
        digits = rng.integers(0, 256, 9 * 500)
        _, ops = histogram_thread_reduction(digits, 256)
        assert ops <= digits.size

    def test_partial_tail_handled(self):
        digits = np.array([3, 3, 3, 3, 3])  # shorter than one run
        hist, ops = histogram_thread_reduction(digits, 8)
        assert hist[3] == 5
        assert ops == 1

    def test_empty(self):
        hist, ops = histogram_thread_reduction(np.empty(0, dtype=np.int64), 8)
        assert ops == 0
        assert hist.sum() == 0


class TestWarpConflict:
    def test_constant_is_full_warp(self):
        digits = np.zeros(32 * 100, dtype=np.int64)
        assert measure_warp_conflict(digits) == pytest.approx(32.0)

    def test_uniform_is_low(self, rng):
        digits = rng.integers(0, 256, 32 * 1000)
        assert measure_warp_conflict(digits) < 4.0

    def test_two_values_is_half_warp(self, rng):
        digits = rng.integers(0, 2, 32 * 1000)
        conflict = measure_warp_conflict(digits)
        assert 16.0 <= conflict <= 22.0

    def test_monotone_in_skew(self, rng):
        conflicts = [
            measure_warp_conflict(rng.integers(0, q, 32 * 500))
            for q in (256, 16, 4, 2, 1)
        ]
        assert conflicts == sorted(conflicts)

    def test_tiny_input(self):
        assert measure_warp_conflict(np.array([1, 1, 2])) == 2.0

    def test_empty(self):
        assert measure_warp_conflict(np.empty(0, dtype=np.int64)) == 1.0


class TestThreadReductionOps:
    def test_constant_is_one_ninth(self):
        digits = np.zeros(9 * 100, dtype=np.int64)
        assert thread_reduction_ops_per_key(digits) == pytest.approx(1 / 9)

    def test_uniform_is_near_one(self, rng):
        digits = rng.integers(0, 256, 9 * 1000)
        assert thread_reduction_ops_per_key(digits) > 0.9

    def test_bounded(self, rng):
        for q in (1, 2, 8, 64):
            digits = rng.integers(0, q, 9 * 200)
            ops = thread_reduction_ops_per_key(digits)
            assert 1 / 9 <= ops <= 1.0


class TestMaxDigitFraction:
    def test_uniform(self):
        assert max_digit_fraction(np.array([25, 25, 25, 25])) == 0.25

    def test_constant(self):
        assert max_digit_fraction(np.array([0, 100, 0])) == 1.0

    def test_empty(self):
        assert max_digit_fraction(np.zeros(4, dtype=np.int64)) == 0.0
