"""Tests for sort configurations and the Table 3 presets."""

from __future__ import annotations

import pytest

from repro.core.config import SortConfig, TABLE3_PRESETS, derive_table3
from repro.errors import ConfigurationError


class TestTable3Presets:
    """The exact rows of Table 3."""

    def test_32bit_keys(self):
        c = SortConfig.for_keys(32)
        assert (c.kpb, c.threads, c.kpt, c.local_threshold) == (
            6912, 384, 18, 9216,
        )

    def test_64bit_keys(self):
        c = SortConfig.for_keys(64)
        assert (c.kpb, c.threads, c.kpt, c.local_threshold) == (
            3456, 384, 9, 4224,
        )

    def test_32_32_pairs(self):
        c = SortConfig.for_pairs(32, 32)
        assert (c.kpb, c.threads, c.kpt, c.local_threshold) == (
            3456, 384, 18, 5760,
        )

    def test_64_64_pairs(self):
        c = SortConfig.for_pairs(64, 64)
        assert (c.kpb, c.threads, c.kpt, c.local_threshold) == (
            2304, 256, 9, 3840,
        )

    def test_for_layout_dispatch(self):
        assert SortConfig.for_layout(32, 0) == SortConfig.for_keys(32)
        assert SortConfig.for_layout(64, 64) == SortConfig.for_pairs(64, 64)

    def test_merge_threshold_respects_r3(self):
        for config in TABLE3_PRESETS.values():
            assert config.merge_threshold <= config.local_threshold

    def test_paper_example_merge_threshold(self):
        # §4.5: "a reasonable configuration, such as KPB = 6 912,
        # ∂̂ = 9 216, ∂ = 3 000".
        c = SortConfig.for_keys(32)
        assert c.merge_threshold == 3000

    def test_eight_bit_digits_everywhere(self):
        # §6: "For the counting sort, we used d = 8 bits per digit."
        for config in TABLE3_PRESETS.values():
            assert config.digit_bits == 8
            assert config.radix == 256


class TestGeometryProperties:
    def test_num_digits(self):
        assert SortConfig.for_keys(32).num_digits == 4
        assert SortConfig.for_keys(64).num_digits == 8

    def test_record_bytes(self):
        assert SortConfig.for_pairs(64, 64).record_bytes == 16
        assert SortConfig.for_keys(32).record_bytes == 4

    def test_ladder_ascending_and_capped(self):
        for config in TABLE3_PRESETS.values():
            ladder = config.local_sort_configs
            assert list(ladder) == sorted(ladder)
            assert ladder[-1] == config.local_threshold
            assert ladder[0] == 128


class TestAblationSwitches:
    def test_defaults_all_on(self):
        c = SortConfig.for_keys(32)
        assert c.use_bucket_merging
        assert c.use_multi_config
        assert c.use_lookahead
        assert c.use_thread_reduction

    def test_with_ablations(self):
        c = SortConfig.for_keys(32).with_ablations(
            bucket_merging=False, lookahead=False
        )
        assert not c.use_bucket_merging
        assert not c.use_lookahead
        assert c.use_multi_config
        assert c.use_thread_reduction

    def test_single_config_ladder(self):
        c = SortConfig.for_keys(32).with_ablations(multi_config=False)
        assert c.effective_configs == (9216,)

    def test_multi_config_ladder(self):
        c = SortConfig.for_keys(32)
        assert len(c.effective_configs) > 1


class TestValidation:
    def test_r3_violation_rejected(self):
        with pytest.raises(ConfigurationError):
            SortConfig(
                key_bits=32, merge_threshold=10_000, local_threshold=9216
            )

    def test_bad_key_bits(self):
        with pytest.raises(ConfigurationError):
            SortConfig(key_bits=24)

    def test_unsorted_ladder_rejected(self):
        with pytest.raises(ConfigurationError):
            SortConfig(
                key_bits=32,
                local_threshold=9216,
                local_sort_configs=(256, 128, 9216),
            )

    def test_ladder_must_end_at_threshold(self):
        with pytest.raises(ConfigurationError):
            SortConfig(
                key_bits=32,
                local_threshold=9216,
                local_sort_configs=(128, 256),
            )

    def test_zero_kpb_rejected(self):
        with pytest.raises(ConfigurationError):
            SortConfig(key_bits=32, kpb=0)


class TestDeriveTable3:
    def test_four_rows(self):
        rows = derive_table3()
        assert len(rows) == 4

    def test_presets_feasible_on_titan_x(self):
        for row in derive_table3():
            assert row["scatter_blocks_per_sm"] >= 2
            assert row["local_sort_shared_bytes"] <= 96 * 1024

    def test_row_labels(self):
        labels = [row["layout"] for row in derive_table3()]
        assert "32-bit keys" in labels
        assert "64-bit/64-bit pairs" in labels
