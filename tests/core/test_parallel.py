"""Tests for the multi-core execution context and its engine hookups."""

from __future__ import annotations

import threading

import numpy as np
import pytest

import repro.core.counting_sort as cs
from repro.core.config import SortConfig
from repro.core.counting_sort import counting_sort_pass
from repro.core.local_sort import LocalSortEngine
from repro.errors import ConfigurationError
from repro.parallel import SERIAL, ExecutionContext, get_context


class TestExecutionContext:
    def test_serial_runs_on_calling_thread(self):
        ctx = ExecutionContext(1)
        assert not ctx.parallel
        caller = threading.get_ident()
        threads = ctx.map(lambda _: threading.get_ident(), range(4))
        assert set(threads) == {caller}

    def test_results_in_task_order(self):
        ctx = ExecutionContext(4)
        try:
            assert ctx.map(lambda x: x * x, range(20)) == [
                x * x for x in range(20)
            ]
        finally:
            ctx.close()

    def test_parallel_uses_worker_threads(self):
        ctx = ExecutionContext(3)
        try:
            event = threading.Barrier(2, timeout=5)

            def task(i):
                # Two tasks rendezvous: proof they run concurrently.
                event.wait()
                return threading.get_ident()

            ids = ctx.map(task, range(2))
            assert len(ids) == 2
        finally:
            ctx.close()

    def test_single_task_skips_pool(self):
        ctx = ExecutionContext(4)
        caller = threading.get_ident()
        assert ctx.map(lambda _: threading.get_ident(), [0]) == [caller]
        assert ctx._executor is None  # pool never spun up
        ctx.close()

    def test_exceptions_propagate(self):
        ctx = ExecutionContext(2)
        try:
            with pytest.raises(ValueError):
                ctx.map(lambda i: (_ for _ in ()).throw(ValueError(i)), range(3))
        finally:
            ctx.close()

    def test_close_allows_reuse(self):
        ctx = ExecutionContext(2)
        assert ctx.map(lambda x: x + 1, range(4)) == [1, 2, 3, 4]
        ctx.close()
        assert ctx.map(lambda x: x + 1, range(4)) == [1, 2, 3, 4]
        ctx.close()

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ConfigurationError):
            ExecutionContext(0)
        with pytest.raises(ConfigurationError):
            get_context(-1)

    def test_get_context_cached_per_worker_count(self):
        assert get_context(1) is SERIAL
        assert get_context(3) is get_context(3)
        assert get_context(3) is not get_context(4)


def _pass_config() -> SortConfig:
    return SortConfig(
        key_bits=32,
        digit_bits=8,
        kpb=96,
        threads=32,
        kpt=3,
        local_threshold=128,
        merge_threshold=40,
        local_sort_configs=(128,),
    )


class TestCountingPassParallel:
    @pytest.mark.parametrize("workers", [2, 5])
    def test_chunked_scatter_matches_serial(self, rng, workers, monkeypatch):
        # Shrink the chunking thresholds so small inputs exercise the
        # chunked path with several chunks per worker.
        monkeypatch.setattr(cs, "_CHUNKED_MIN", 256)
        monkeypatch.setattr(cs, "_CHUNK_TARGET", 128)
        config = _pass_config()
        src = rng.integers(0, 2**32, 5000, dtype=np.uint64).astype(np.uint32)
        offsets = np.array([0], dtype=np.int64)
        sizes = np.array([src.size], dtype=np.int64)
        dst_serial = np.zeros_like(src)
        out_serial = counting_sort_pass(
            src, dst_serial, offsets, sizes, config, 0
        )
        dst_threaded = np.zeros_like(src)
        out_threaded = counting_sort_pass(
            src, dst_threaded, offsets, sizes, config, 0,
            ctx=get_context(workers),
        )
        assert np.array_equal(dst_serial, dst_threaded)
        assert np.array_equal(out_serial.counts, out_threaded.counts)

    @pytest.mark.parametrize("workers", [2, 8])
    def test_per_bucket_spans_match_serial(self, rng, workers, monkeypatch):
        monkeypatch.setattr(cs, "_PER_BUCKET_MIN", 8)
        config = _pass_config()
        sizes = np.array([40, 120, 9, 300, 77], dtype=np.int64)
        offsets = np.concatenate(([0], np.cumsum(sizes)[:-1]))
        src = rng.integers(
            0, 2**32, int(sizes.sum()), dtype=np.uint64
        ).astype(np.uint32)
        dst_serial = np.zeros_like(src)
        counting_sort_pass(src, dst_serial, offsets, sizes, config, 1)
        dst_threaded = np.zeros_like(src)
        counting_sort_pass(
            src, dst_threaded, offsets, sizes, config, 1,
            ctx=get_context(workers),
        )
        assert np.array_equal(dst_serial, dst_threaded)


class TestLocalSortParallel:
    @pytest.mark.parametrize("workers", [2, 6])
    def test_batches_match_serial(self, rng, workers):
        config = _pass_config()
        n_buckets = 40
        sizes = rng.integers(1, 128, n_buckets).astype(np.int64)
        offsets = np.concatenate(([0], np.cumsum(sizes)[:-1]))
        total = int(sizes.sum())
        keys = rng.integers(0, 2**32, total, dtype=np.uint64).astype(np.uint32)
        values = np.arange(total, dtype=np.uint32)
        results = {}
        for w in (1, workers):
            engine = LocalSortEngine(
                (16, 32, 64, 128), config.geometry, ctx=get_context(w)
            )
            dst = np.zeros_like(keys)
            dst_v = np.zeros_like(values)
            engine.execute(
                0, keys, dst, offsets, sizes,
                np.zeros(n_buckets, dtype=np.int64),
                src_values=values, dst_values=dst_v,
            )
            results[w] = (dst, dst_v)
        assert np.array_equal(results[1][0], results[workers][0])
        assert np.array_equal(results[1][1], results[workers][1])

    def test_slice_path_matches_matrix_path(self, rng, monkeypatch):
        import repro.core.local_sort as ls

        config = _pass_config()
        sizes = np.full(6, 100, dtype=np.int64)
        offsets = np.arange(6, dtype=np.int64) * 100
        keys = rng.integers(0, 2**32, 600, dtype=np.uint64).astype(np.uint32)
        sort_from = np.zeros(6, dtype=np.int64)

        def run():
            engine = LocalSortEngine((128,), config.geometry)
            dst = np.zeros_like(keys)
            engine.execute(0, keys, dst, offsets, sizes, sort_from)
            return dst

        monkeypatch.setattr(ls, "_SLICE_SORT_MIN_AVG", 1)
        sliced = run()
        monkeypatch.setattr(ls, "_SLICE_SORT_MIN_AVG", 10**9)
        matrixed = run()
        assert np.array_equal(sliced, matrixed)


class TestSorterWorkers:
    def test_keys_only_workers_identical(self, rng):
        from dataclasses import replace

        from repro.core.hybrid_sort import HybridRadixSorter

        keys = rng.integers(0, 2**32, 50_000, dtype=np.uint64).astype(
            np.uint32
        )
        base = HybridRadixSorter(
            config=replace(_pass_config(), workers=1)
        ).sort(keys)
        for workers in (2, 8):
            threaded = HybridRadixSorter(
                config=replace(_pass_config(), workers=workers)
            ).sort(keys)
            assert np.array_equal(base.keys, threaded.keys)
