"""Tests for the order-preserving key bijections (§4.6)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.keys import (
    SUPPORTED_DTYPES,
    bits_dtype_for,
    from_sortable_bits,
    to_sortable_bits,
)
from repro.errors import UnsupportedDtypeError


def _samples(dtype, rng):
    dtype = np.dtype(dtype)
    if dtype.kind == "f":
        finite = rng.uniform(-1e30, 1e30, 500).astype(dtype)
        special = np.array(
            [0.0, -0.0, np.inf, -np.inf, 1e-45, -1e-45], dtype=dtype
        )
        return np.concatenate((finite, special))
    info = np.iinfo(dtype)
    bits = dtype.itemsize * 8
    body = rng.integers(0, 2**bits, 500, dtype=np.uint64).astype(
        np.dtype(f"u{dtype.itemsize}")
    ).view(dtype)
    edges = np.array([info.min, info.max, 0], dtype=dtype)
    return np.concatenate((body, edges))


@pytest.mark.parametrize("dtype", SUPPORTED_DTYPES, ids=str)
class TestRoundTrip:
    def test_roundtrip_identity(self, dtype, rng):
        values = _samples(dtype, rng)
        bits = to_sortable_bits(values)
        back = from_sortable_bits(bits, dtype)
        assert np.array_equal(back, values)

    def test_order_preserved(self, dtype, rng):
        values = _samples(dtype, rng)
        bits = to_sortable_bits(values)
        order = np.argsort(bits, kind="stable")
        reference = np.argsort(values, kind="stable")
        assert np.array_equal(values[order], values[reference])

    def test_bits_dtype_unsigned(self, dtype, rng):
        assert bits_dtype_for(dtype).kind == "u"


class TestFloatEdgeCases:
    def test_negative_sorts_before_positive(self):
        values = np.array([1.0, -1.0, 0.5, -0.5], dtype=np.float32)
        bits = to_sortable_bits(values)
        assert np.array_equal(
            values[np.argsort(bits)], np.sort(values)
        )

    def test_negative_zero_vs_positive_zero(self):
        # -0.0 and 0.0 map to adjacent, ordered bit patterns.
        bits = to_sortable_bits(np.array([-0.0, 0.0], dtype=np.float64))
        assert bits[0] < bits[1]

    def test_infinities_at_extremes(self):
        values = np.array(
            [np.inf, -np.inf, 0.0, 1e300, -1e300], dtype=np.float64
        )
        bits = to_sortable_bits(values)
        assert bits.argmax() == 0
        assert bits.argmin() == 1

    def test_nan_sorts_last(self):
        values = np.array([np.nan, np.inf, 0.0], dtype=np.float64)
        bits = to_sortable_bits(values)
        assert bits.argmax() == 0


class TestSignedIntegers:
    def test_min_maps_to_zero(self):
        bits = to_sortable_bits(np.array([np.iinfo(np.int32).min], dtype=np.int32))
        assert bits[0] == 0

    def test_max_maps_to_all_ones(self):
        bits = to_sortable_bits(np.array([np.iinfo(np.int64).max], dtype=np.int64))
        assert bits[0] == np.uint64(0xFFFFFFFFFFFFFFFF)

    def test_negative_below_positive(self):
        bits = to_sortable_bits(np.array([-1, 1], dtype=np.int32))
        assert bits[0] < bits[1]


class TestRejections:
    def test_unsupported_dtype(self):
        with pytest.raises(UnsupportedDtypeError):
            to_sortable_bits(np.array([1 + 2j]))

    def test_unsupported_inverse(self):
        with pytest.raises(UnsupportedDtypeError):
            from_sortable_bits(np.array([1], dtype=np.uint32), np.complex64)

    def test_unsupported_bits_dtype(self):
        with pytest.raises(UnsupportedDtypeError):
            bits_dtype_for(np.float16)
