"""Tests for the local sort: configuration ladder and both engines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.digits import DigitGeometry
from repro.core.local_sort import (
    LocalSortEngine,
    assign_configs,
    block_radix_sort_shared,
)
from repro.errors import ConfigurationError


GEOMETRY = DigitGeometry(32, 8)


class TestAssignConfigs:
    def test_smallest_fitting_config(self):
        idx = assign_configs(np.array([1, 128, 129, 500]), (128, 256, 512))
        assert idx.tolist() == [0, 0, 1, 2]

    def test_exact_boundaries(self):
        idx = assign_configs(np.array([256]), (128, 256, 512))
        assert idx.tolist() == [1]

    def test_oversized_rejected(self):
        with pytest.raises(ConfigurationError):
            assign_configs(np.array([513]), (128, 256, 512))

    def test_empty_bucket_rejected(self):
        with pytest.raises(ConfigurationError):
            assign_configs(np.array([0]), (128,))


def _run_engine(keys, offsets, sizes, sort_from=None, values=None,
                configs=(16, 32, 64, 128)):
    src = np.asarray(keys, dtype=np.uint32)
    dst = src.copy()
    offsets = np.asarray(offsets, dtype=np.int64)
    sizes = np.asarray(sizes, dtype=np.int64)
    if sort_from is None:
        sort_from = np.zeros(offsets.size, dtype=np.int64)
    src_v = dst_v = None
    if values is not None:
        src_v = np.asarray(values)
        dst_v = src_v.copy()
    engine = LocalSortEngine(configs, GEOMETRY)
    trace = engine.execute(
        0, src, dst, offsets, sizes, np.asarray(sort_from),
        src_values=src_v, dst_values=dst_v,
    )
    return dst, dst_v, trace


class TestFastEngine:
    def test_single_bucket(self, rng):
        keys = rng.integers(0, 2**32, 100, dtype=np.uint64).astype(np.uint32)
        out, _, _ = _run_engine(keys, [0], [100])
        assert np.array_equal(out, np.sort(keys))

    def test_multiple_disjoint_buckets(self, rng):
        keys = rng.integers(0, 2**32, 300, dtype=np.uint64).astype(np.uint32)
        out, _, _ = _run_engine(keys, [0, 100, 250], [100, 120, 50])
        assert np.array_equal(out[0:100], np.sort(keys[0:100]))
        assert np.array_equal(out[100:220], np.sort(keys[100:220]))
        assert np.array_equal(out[250:300], np.sort(keys[250:300]))
        # The gap between buckets stays untouched.
        assert np.array_equal(out[220:250], keys[220:250])

    def test_untouched_regions_preserved(self, rng):
        keys = rng.integers(0, 2**32, 100, dtype=np.uint64).astype(np.uint32)
        out, _, _ = _run_engine(keys, [10], [20])
        assert np.array_equal(out[:10], keys[:10])
        assert np.array_equal(out[30:], keys[30:])

    def test_max_valued_keys_not_confused_with_padding(self):
        keys = np.array([5, 0xFFFFFFFF, 1, 0xFFFFFFFF], dtype=np.uint32)
        out, _, _ = _run_engine(keys, [0], [4])
        assert out.tolist() == [1, 5, 0xFFFFFFFF, 0xFFFFFFFF]

    def test_values_follow_keys(self, rng):
        keys = rng.integers(0, 1000, 120, dtype=np.uint64).astype(np.uint32)
        values = np.arange(120, dtype=np.uint32)
        out, out_v, _ = _run_engine(keys, [0, 60], [60, 60], values=values)
        for lo, hi in ((0, 60), (60, 120)):
            assert np.array_equal(keys[out_v[lo:hi]], out[lo:hi])
            assert np.array_equal(out[lo:hi], np.sort(keys[lo:hi]))

    def test_trace_config_routing(self, rng):
        keys = rng.integers(0, 2**32, 200, dtype=np.uint64).astype(np.uint32)
        _, _, trace = _run_engine(
            keys, [0, 10, 50], [10, 40, 100], sort_from=[1, 2, 1]
        )
        capacities = {c.capacity: c for c in trace.per_config}
        assert capacities[16].n_buckets == 1
        assert capacities[64].n_buckets == 1
        assert capacities[128].n_buckets == 1
        assert trace.total_keys == 150
        # Provisioned = capacity x buckets (the over-provisioning metric).
        assert trace.provisioned_keys == 16 + 64 + 128

    def test_remaining_digits_weighted(self, rng):
        keys = rng.integers(0, 2**32, 64, dtype=np.uint64).astype(np.uint32)
        _, _, trace = _run_engine(keys, [0, 32], [32, 32], sort_from=[0, 0],
                                  configs=(32, 128))
        stats = trace.per_config[0]
        assert stats.avg_remaining_digits == pytest.approx(4.0)

    def test_empty_request(self):
        keys = np.zeros(10, dtype=np.uint32)
        _, _, trace = _run_engine(keys, [], [])
        assert trace.total_keys == 0
        assert trace.per_config == ()

    def test_padded_pairs_with_max_valued_keys(self):
        # Non-uniform sizes force the padded scratch path; keys equal to
        # the pad value must keep their values attached (the value
        # matrix is uninitialised, so any leak of a padding cell into
        # the first `size` columns would surface here).
        keys = np.array(
            [0xFFFFFFFF, 5, 0xFFFFFFFF, 7, 3, 1, 2], dtype=np.uint32
        )
        values = np.arange(7, dtype=np.uint32)
        out, out_v, _ = _run_engine(
            keys, [0, 3], [3, 4], values=values, configs=(16,)
        )
        assert out.tolist() == [5, 0xFFFFFFFF, 0xFFFFFFFF, 1, 2, 3, 7]
        assert out_v.tolist() == [1, 0, 2, 5, 6, 4, 3]

    def test_uniform_batch_skips_padding(self, rng):
        # All buckets share one size below the configuration capacity:
        # the dense path must still sort values along with keys.
        keys = rng.integers(0, 2**32, 30, dtype=np.uint64).astype(np.uint32)
        values = np.arange(30, dtype=np.uint32)
        out, out_v, _ = _run_engine(
            keys, [0, 10, 20], [10, 10, 10], values=values, configs=(16,)
        )
        for lo in (0, 10, 20):
            assert np.array_equal(out[lo : lo + 10], np.sort(keys[lo : lo + 10]))
            assert np.array_equal(keys[out_v[lo : lo + 10]], out[lo : lo + 10])

    def test_scratch_pool_reused_across_batches(self, rng):
        engine = LocalSortEngine((16, 128), GEOMETRY)
        keys = rng.integers(0, 2**32, 200, dtype=np.uint64).astype(np.uint32)
        offsets = np.array([0, 7, 100], dtype=np.int64)
        sizes = np.array([7, 90, 100], dtype=np.int64)  # non-uniform
        sort_from = np.zeros(3, dtype=np.int64)
        dst = keys.copy()
        engine.execute(0, keys, dst, offsets, sizes, sort_from)
        buffers = {k: id(v) for k, v in engine._scratch_tls.pools.items()}
        assert buffers  # padded path drew from the pool
        dst2 = keys.copy()
        engine.execute(1, keys, dst2, offsets, sizes, sort_from)
        assert {
            k: id(v) for k, v in engine._scratch_tls.pools.items()
        } == buffers
        assert np.array_equal(dst, dst2)

    def test_empty_execute_remaining_uses_digit_form(self):
        # Regression: the early return used to copy `sizes` into
        # `bucket_remaining`; the two fields are semantically distinct
        # (sizes are key counts, remaining are digit counts) and the
        # remaining field must always be `num_digits - sort_from`.
        engine = LocalSortEngine((16, 128), GEOMETRY)
        keys = np.arange(10, dtype=np.uint32)
        empty = np.empty(0, dtype=np.int64)
        trace = engine.execute(
            3, keys, keys.copy(), empty, empty.copy(), empty.copy()
        )
        assert trace.bucket_sizes.size == 0
        assert trace.bucket_remaining.size == 0
        assert trace.bucket_remaining.dtype == np.int64
        # Same formula as the non-empty path, on the same inputs.
        nonempty = engine.execute(
            0, keys, keys.copy(),
            np.array([0], dtype=np.int64),
            np.array([10], dtype=np.int64),
            np.array([1], dtype=np.int64),
        )
        assert nonempty.bucket_remaining.tolist() == [
            GEOMETRY.num_digits - 1
        ]

    def test_large_batch_chunking(self, rng):
        # Many buckets in one class exercise the row-batching path.
        n_buckets = 3000
        size = 8
        keys = rng.integers(0, 2**32, n_buckets * size, dtype=np.uint64).astype(np.uint32)
        offsets = np.arange(n_buckets) * size
        out, _, _ = _run_engine(keys, offsets, np.full(n_buckets, size))
        reshaped = out.reshape(n_buckets, size)
        assert np.all(reshaped[:, :-1] <= reshaped[:, 1:])


class TestBlockRadixSortShared:
    def test_full_sort(self, rng):
        keys = rng.integers(0, 2**32, 500, dtype=np.uint64).astype(np.uint32)
        out, _ = block_radix_sort_shared(keys, GEOMETRY)
        assert np.array_equal(out, np.sort(keys))

    def test_from_digit_with_shared_prefix(self, rng):
        # Keys agreeing on the top two digits: sorting from digit 2 must
        # fully sort them.
        base = np.uint32(0xAABB0000)
        keys = (base | rng.integers(0, 2**16, 200, dtype=np.uint64).astype(np.uint32))
        out, _ = block_radix_sort_shared(keys, GEOMETRY, from_digit=2)
        assert np.array_equal(out, np.sort(keys))

    def test_values_follow(self, rng):
        keys = rng.integers(0, 256, 100, dtype=np.uint64).astype(np.uint32)
        values = np.arange(100, dtype=np.uint32)
        out, out_v = block_radix_sort_shared(keys, GEOMETRY, 0, values)
        assert np.array_equal(keys[out_v], out)

    def test_is_stable(self):
        keys = np.array([2, 1, 2, 1, 2], dtype=np.uint32)
        values = np.arange(5, dtype=np.uint32)
        _, out_v = block_radix_sort_shared(keys, GEOMETRY, 0, values)
        assert out_v.tolist() == [1, 3, 0, 2, 4]

    def test_matches_fast_engine(self, rng):
        keys = rng.integers(0, 2**32, 128, dtype=np.uint64).astype(np.uint32)
        faithful, _ = block_radix_sort_shared(keys, GEOMETRY)
        fast, _, _ = _run_engine(keys, [0], [128])
        assert np.array_equal(faithful, fast)

    def test_invalid_from_digit(self):
        with pytest.raises(ConfigurationError):
            block_radix_sort_shared(
                np.zeros(4, dtype=np.uint32), GEOMETRY, from_digit=5
            )
