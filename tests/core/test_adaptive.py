"""Tests for the adaptive sorter (§6.1's case distinction)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.adaptive import (
    AdaptiveSorter,
    PAPER_CROSSOVER_KEYS,
    PAPER_CROSSOVER_PAIRS,
    calibrate_crossover,
)
from repro.errors import ConfigurationError
from repro.workloads import constant_keys, uniform_keys


class TestDispatch:
    def test_paper_thresholds(self):
        sorter = AdaptiveSorter()
        assert not sorter.chooses_hybrid(1_000_000, has_values=False)
        assert sorter.chooses_hybrid(2_000_000, has_values=False)
        assert not sorter.chooses_hybrid(1_500_000, has_values=True)
        assert sorter.chooses_hybrid(1_700_000, has_values=True)

    def test_threshold_constants(self):
        # §6.1: 1.9 M keys / 1.6 M pairs.
        assert PAPER_CROSSOVER_KEYS == 1_900_000
        assert PAPER_CROSSOVER_PAIRS == 1_600_000

    def test_small_input_uses_fallback(self, rng):
        keys = uniform_keys(10_000, 32, rng)
        result = AdaptiveSorter().sort(keys)
        assert result.meta["engine"] == "cub-fallback"
        assert np.array_equal(result.keys, np.sort(keys))

    def test_large_input_uses_hybrid(self, rng):
        keys = uniform_keys(50_000, 32, rng)
        sorter = AdaptiveSorter(key_crossover=20_000)
        result = sorter.sort(keys)
        assert result.meta["engine"] == "hybrid"
        assert result.trace is not None
        assert np.array_equal(result.keys, np.sort(keys))

    def test_pairs_dispatch(self, rng):
        keys = uniform_keys(5_000, 32, rng)
        values = np.arange(5_000, dtype=np.uint32)
        sorter = AdaptiveSorter(pair_crossover=1_000)
        result = sorter.sort(keys, values)
        assert result.meta["engine"] == "hybrid"
        assert np.array_equal(keys[result.values], result.keys)

    def test_both_engines_agree(self, rng):
        keys = uniform_keys(30_000, 32, rng)
        small = AdaptiveSorter(key_crossover=10**9).sort(keys)
        large = AdaptiveSorter(key_crossover=0).sort(keys)
        assert np.array_equal(small.keys, large.keys)

    def test_invalid_threshold(self):
        with pytest.raises(ConfigurationError):
            AdaptiveSorter(key_crossover=-1)


class TestPlannerDispatch:
    """The §6.1 case distinction now lives in the shared planner."""

    def test_chooses_hybrid_delegates_to_planner(self):
        sorter = AdaptiveSorter(key_crossover=500, pair_crossover=700)
        for n in (0, 499, 500, 501, 699, 700, 10_000):
            assert sorter.chooses_hybrid(n, False) == sorter.planner.chooses_hybrid(n, False)
            assert sorter.chooses_hybrid(n, True) == sorter.planner.chooses_hybrid(n, True)
            assert sorter.chooses_hybrid(n, False) == (n >= 500)
            assert sorter.chooses_hybrid(n, True) == (n >= 700)

    def test_sort_records_the_plan(self, rng):
        keys = uniform_keys(2_000, 32, rng)
        result = AdaptiveSorter(key_crossover=1_000).sort(keys)
        plan = result.meta["plan"]
        assert plan.strategy == "hybrid"
        assert plan.descriptor.n == 2_000

    def test_crossover_constants_reexported(self):
        from repro.plan import (
            PAPER_CROSSOVER_KEYS as planner_keys,
            PAPER_CROSSOVER_PAIRS as planner_pairs,
        )

        assert PAPER_CROSSOVER_KEYS == planner_keys
        assert PAPER_CROSSOVER_PAIRS == planner_pairs


class TestCalibration:
    def test_worst_case_crossover_near_paper(self):
        # A constant distribution recovers the ~1.9 M-key region.
        keys = constant_keys(1 << 18, 64)
        crossover = calibrate_crossover(keys)
        assert 500_000 <= crossover <= 8_000_000

    def test_uniform_crossover_is_small(self, rng):
        # For uniform inputs the hybrid sort wins much earlier.
        keys = uniform_keys(1 << 18, 64, rng)
        crossover_uniform = calibrate_crossover(keys)
        crossover_worst = calibrate_crossover(constant_keys(1 << 18, 64))
        assert crossover_uniform <= crossover_worst

    def test_smoke_small_candidates(self, rng):
        # Quick smoke: custom candidate ladder, pairs payload priced in.
        keys = uniform_keys(1 << 14, 32, rng)
        crossover = calibrate_crossover(
            keys,
            value_bytes=4,
            candidates=(1 << 14, 1 << 16, 1 << 18),
        )
        assert crossover in (1 << 14, 1 << 16, 1 << 18)
