"""Tests for coherent key-value layouts (§4.6)."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core.pairs import decompose, make_records, record_dtype, recompose
from repro.errors import ConfigurationError


class TestRecords:
    def test_roundtrip(self, rng):
        keys = rng.integers(0, 2**32, 100, dtype=np.uint64).astype(np.uint32)
        values = rng.integers(0, 2**32, 100, dtype=np.uint64).astype(np.uint32)
        records = make_records(keys, values)
        k, v = decompose(records)
        assert np.array_equal(k, keys)
        assert np.array_equal(v, values)
        assert np.array_equal(recompose(k, v), records)

    def test_record_dtype_fields(self):
        dt = record_dtype(np.uint64, np.uint32)
        assert dt.names == ("key", "value")
        assert dt["key"] == np.uint64

    def test_decompose_copies(self, rng):
        keys = rng.integers(0, 100, 10, dtype=np.uint64).astype(np.uint32)
        records = make_records(keys, keys.copy())
        k, _ = decompose(records)
        k[0] = 999
        assert records["key"][0] != 999

    def test_mismatched_shapes(self):
        with pytest.raises(ConfigurationError):
            make_records(np.zeros(3, dtype=np.uint32), np.zeros(4, dtype=np.uint32))

    def test_decompose_requires_fields(self):
        with pytest.raises(ConfigurationError):
            decompose(np.zeros(4, dtype=np.uint32))


class TestSortRecords:
    def test_end_to_end(self, rng):
        keys = rng.integers(0, 2**32, 30_000, dtype=np.uint64).astype(np.uint32)
        values = np.arange(30_000, dtype=np.uint32)
        records = make_records(keys, values)
        result = repro.sort_records(records)
        sorted_records = result.meta["records"]
        assert np.array_equal(sorted_records["key"], np.sort(keys))
        assert np.array_equal(keys[sorted_records["value"]], sorted_records["key"])

    def test_mixed_widths(self, rng):
        keys = rng.integers(0, 2**64, 20_000, dtype=np.uint64)
        values = rng.integers(0, 2**64, 20_000, dtype=np.uint64)
        records = make_records(keys, values)
        result = repro.sort_records(records)
        assert np.array_equal(result.keys, np.sort(keys))
