"""Tests for bucket bookkeeping: merge rule R3 and block subdivision R4."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bucket import (
    BlockAssignment,
    LocalBucketAssignment,
    block_assignment_records,
    partition_subbuckets,
    subdivide_into_blocks,
)
from repro.errors import ConfigurationError


def _partition(counts, merge=40, local=128, merging=True, offsets=None):
    counts = np.asarray(counts, dtype=np.int64)
    if counts.ndim == 1:
        counts = counts[None, :]
    if offsets is None:
        offsets = np.zeros(counts.shape[0], dtype=np.int64)
    return partition_subbuckets(
        np.asarray(offsets, dtype=np.int64),
        counts,
        merge_threshold=merge,
        local_threshold=local,
        merging_enabled=merging,
    )


class TestClassification:
    def test_oversized_goes_to_next_pass(self):
        out = _partition([200, 0, 0, 0])
        assert out.n_next == 1
        assert out.next_sizes.tolist() == [200]
        assert out.n_local == 0

    def test_small_goes_local(self):
        out = _partition([100, 0, 0, 0])
        assert out.n_local == 1
        assert out.local_sizes.tolist() == [100]
        assert not out.local_is_merged[0]

    def test_empty_subbuckets_vanish(self):
        out = _partition([0, 0, 0, 0])
        assert out.n_local == 0
        assert out.n_next == 0

    def test_mixed(self):
        out = _partition([300, 100, 0, 50])
        assert out.n_next == 1
        assert out.n_local == 2


class TestMergeRuleR3:
    def test_tiny_neighbours_merge(self):
        # 10+10+10 = 30 < ∂=40: one merged bucket.
        out = _partition([10, 10, 10, 0])
        assert out.n_local == 1
        assert out.local_sizes.tolist() == [30]
        assert out.local_is_merged.tolist() == [True]

    def test_run_closes_at_threshold(self):
        # 30+30 = 60 >= 40: the run closes before the second bucket.
        out = _partition([30, 30, 0, 0])
        assert out.n_local == 2
        assert out.local_sizes.tolist() == [30, 30]

    def test_merged_total_below_threshold(self):
        rng = np.random.default_rng(9)
        counts = rng.integers(0, 20, size=(8, 16))
        out = _partition(counts, merge=40, local=128)
        merged_sizes = out.local_sizes[out.local_is_merged]
        assert np.all(merged_sizes < 40)

    def test_large_single_cannot_join_run(self):
        # A sub-bucket of >= ∂ keys stands alone (any sequence holding it
        # reaches ∂).
        out = _partition([10, 90, 10, 0])
        assert out.n_local == 3
        assert sorted(out.local_sizes.tolist()) == [10, 10, 90]

    def test_oversized_closes_run(self):
        out = _partition([10, 200, 10, 0])
        assert out.n_next == 1
        assert out.n_local == 2
        assert out.n_merged == 0

    def test_merging_respects_parent_boundaries(self):
        # Two parents, each with one tiny sub-bucket: never merged across.
        counts = np.array([[5, 0, 0, 0], [5, 0, 0, 0]])
        out = _partition(counts, offsets=[0, 5])
        assert out.n_local == 2
        assert out.local_offsets.tolist() == [0, 5]

    def test_merging_disabled(self):
        out = _partition([10, 10, 10, 0], merging=False)
        assert out.n_local == 3
        assert out.n_merged == 0

    def test_zero_size_gap_does_not_split_run(self):
        out = _partition([10, 0, 10, 0])
        assert out.n_local == 1
        assert out.local_sizes.tolist() == [20]
        assert out.local_is_merged.tolist() == [True]

    def test_single_member_run_not_flagged_merged(self):
        out = _partition([10, 90, 0, 0])
        flags = dict(zip(out.local_sizes.tolist(), out.local_is_merged.tolist()))
        assert flags[10] is False or flags[10] == False  # noqa: E712

    def test_offsets_are_contiguous_prefix_sums(self):
        out = _partition([50, 60, 70, 200], merge=40, local=128, offsets=[1000])
        # Sub-bucket offsets: 1000, 1050, 1110, 1180.
        all_offsets = sorted(
            out.local_offsets.tolist() + out.next_offsets.tolist()
        )
        assert all_offsets == [1000, 1050, 1110, 1180]

    def test_r3_validation(self):
        with pytest.raises(ConfigurationError):
            _partition([1, 2, 3, 4], merge=200, local=128)

    def test_empty_parents(self):
        out = partition_subbuckets(
            np.empty(0, dtype=np.int64),
            np.empty((0, 4), dtype=np.int64),
            merge_threshold=40,
            local_threshold=128,
        )
        assert out.n_local == 0
        assert out.n_next == 0


class TestSizeConservation:
    def test_total_keys_preserved(self):
        rng = np.random.default_rng(17)
        counts = rng.integers(0, 300, size=(20, 32))
        offsets = np.concatenate(
            ([0], np.cumsum(counts.sum(axis=1))[:-1])
        )
        out = partition_subbuckets(
            offsets, counts, merge_threshold=40, local_threshold=128
        )
        total = out.local_sizes.sum() + out.next_sizes.sum()
        assert total == counts.sum()

    def test_extents_disjoint(self):
        rng = np.random.default_rng(23)
        counts = rng.integers(0, 100, size=(5, 16))
        offsets = np.concatenate(([0], np.cumsum(counts.sum(axis=1))[:-1]))
        out = partition_subbuckets(
            offsets, counts, merge_threshold=40, local_threshold=128
        )
        spans = sorted(
            list(zip(out.local_offsets.tolist(), out.local_sizes.tolist()))
            + list(zip(out.next_offsets.tolist(), out.next_sizes.tolist()))
        )
        for (o1, s1), (o2, _) in zip(spans, spans[1:]):
            assert o1 + s1 <= o2


class TestBlockSubdivision:
    def test_exact_division(self):
        offsets, sizes, ids = subdivide_into_blocks(
            np.array([0]), np.array([300]), kpb=100
        )
        assert offsets.tolist() == [0, 100, 200]
        assert sizes.tolist() == [100, 100, 100]
        assert ids.tolist() == [0, 0, 0]

    def test_remainder_block(self):
        offsets, sizes, ids = subdivide_into_blocks(
            np.array([0]), np.array([250]), kpb=100
        )
        assert sizes.tolist() == [100, 100, 50]

    def test_r4_one_bucket_per_block(self):
        offsets, sizes, ids = subdivide_into_blocks(
            np.array([0, 150]), np.array([150, 70]), kpb=100
        )
        assert ids.tolist() == [0, 0, 1]
        assert offsets.tolist() == [0, 100, 150]
        assert sizes.tolist() == [100, 50, 70]

    def test_block_count_bound_i4(self):
        # I4: at most floor(n/KPB) + (#buckets) blocks.
        rng = np.random.default_rng(3)
        sizes = rng.integers(1, 1000, 50)
        offsets = np.concatenate(([0], np.cumsum(sizes)[:-1]))
        _, bsizes, _ = subdivide_into_blocks(offsets, sizes, kpb=96)
        n = int(sizes.sum())
        assert bsizes.size <= n // 96 + sizes.size

    def test_empty(self):
        offsets, sizes, ids = subdivide_into_blocks(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), kpb=10
        )
        assert offsets.size == 0

    def test_invalid_kpb(self):
        with pytest.raises(ConfigurationError):
            subdivide_into_blocks(np.array([0]), np.array([10]), kpb=0)


class TestRecords:
    def test_record_bytes_match_paper(self):
        # §4.5: block assignments are 16 bytes, local assignments 12.
        assert BlockAssignment.RECORD_BYTES == 16
        assert LocalBucketAssignment.RECORD_BYTES == 12

    def test_block_assignment_records(self):
        records = block_assignment_records(
            np.array([0, 250]), np.array([250, 30]), kpb=100
        )
        assert len(records) == 4
        assert records[0] == BlockAssignment(
            k_offs=0, k_count=100, b_id=0, b_offs=0
        )
        assert records[-1] == BlockAssignment(
            k_offs=250, k_count=30, b_id=1, b_offs=250
        )
