"""Table 2's worked example, reproduced end to end.

The paper sorts 16 four-bit keys (base-4 notation) with d = 2 bits,
r = 4, and ∂̂ = 3.  We embed the 4-bit keys in the top nibble of a byte
so the first two MSD digits are exactly the example's two radix-4 digits.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import SortConfig
from repro.core.hybrid_sort import HybridRadixSorter

#: The example's keys in base-4: 31 12 01 23 12 22 12 00 11 10 10 31 03
#: 13 12 03.
TABLE2_BASE4 = [
    (3, 1), (1, 2), (0, 1), (2, 3), (1, 2), (2, 2), (1, 2), (0, 0),
    (1, 1), (1, 0), (1, 0), (3, 1), (0, 3), (1, 3), (1, 2), (0, 3),
]

#: Sorted output from the table's last row.
TABLE2_SORTED_BASE4 = [
    (0, 0), (0, 1), (0, 3), (0, 3), (1, 0), (1, 0), (1, 1), (1, 2),
    (1, 2), (1, 2), (1, 2), (1, 3), (2, 2), (2, 3), (3, 1), (3, 1),
]


def _keys() -> np.ndarray:
    # Digit values (a, b) become the top two 2-bit digits of a byte.
    return np.array(
        [(a << 6) | (b << 4) for a, b in TABLE2_BASE4], dtype=np.uint8
    )


def _config() -> SortConfig:
    return SortConfig(
        key_bits=8,
        value_bits=0,
        digit_bits=2,
        kpb=16,
        threads=4,
        kpt=4,
        local_threshold=3,
        merge_threshold=3,
        local_sort_configs=(2, 3),
    )


class TestTable2:
    def test_sorted_output_matches_table(self):
        result = HybridRadixSorter(config=_config()).sort(_keys())
        expected = np.array(
            [(a << 6) | (b << 4) for a, b in TABLE2_SORTED_BASE4],
            dtype=np.uint8,
        )
        assert np.array_equal(result.keys, expected)

    def test_first_pass_histogram(self):
        # Table 2 row "histogram": 4 8 2 2.
        result = HybridRadixSorter(config=_config()).sort(_keys())
        trace = result.trace
        first = trace.counting_passes[0]
        assert first.n_keys == 16
        assert first.n_buckets_in == 1

    def test_first_pass_bucket_sizes(self):
        # Buckets 0 and 1 (4 and 8 keys > ∂̂ = 3) continue; buckets 2
        # and 3 (2 keys each <= 3) go to the local sort.
        result = HybridRadixSorter(config=_config()).sort(_keys())
        first = result.trace.counting_passes[0]
        assert first.n_next_buckets == 2
        assert first.n_local_buckets == 2

    def test_second_pass_covers_remaining_12_keys(self):
        result = HybridRadixSorter(config=_config()).sort(_keys())
        second = result.trace.counting_passes[1]
        assert second.n_keys == 12
        assert second.n_buckets_in == 2

    def test_prefix_sums_match_table(self):
        # Table 2: prefix-sum over the first histogram is 0 4 12 14 —
        # i.e. bucket 1 spans offsets [4, 12) and must contain the eight
        # keys whose first digit is 1.
        result = HybridRadixSorter(config=_config()).sort(_keys())
        firsts = result.keys >> np.uint8(6)
        assert np.array_equal(
            np.flatnonzero(firsts == 1), np.arange(4, 12)
        )

    def test_example_uses_radix_4(self):
        config = _config()
        assert config.radix == 4
        assert config.geometry.num_digits == 4
