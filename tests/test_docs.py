"""The documentation gate, run as part of tier-1.

Mirrors the CI docs job (``tools/check_docs.py``): every doctest in
``docs/*.md`` must execute against the current API, and every relative
link/anchor in the docs and README must resolve.  Keeping this in
tier-1 means a refactor that breaks the paper-map table or an example
fails locally, not just in CI.
"""

from __future__ import annotations

import importlib.util
import pathlib

REPO = pathlib.Path(__file__).resolve().parents[1]


def _checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO / "tools" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_docs_exist():
    assert (REPO / "docs" / "architecture.md").is_file()
    assert (REPO / "docs" / "paper-map.md").is_file()


def test_links_and_anchors_resolve():
    checker = _checker()
    errors = checker.check_links(checker.doc_files())
    assert errors == []


def test_doc_doctests_pass():
    checker = _checker()
    errors = checker.check_doctests(checker.doc_files())
    assert errors == []


def test_checker_catches_broken_link(tmp_path):
    # The gate itself must fail when a link rots; otherwise the CI job
    # is decoration.
    checker = _checker()
    doc = tmp_path / "broken.md"
    doc.write_text("see [missing](does-not-exist.md) and [bad](#nope)\n")
    errors = checker.check_links([doc])
    assert len(errors) == 2
    assert "broken link" in errors[0]
    assert "missing anchor" in errors[1]


def test_github_slugging():
    checker = _checker()
    assert checker.github_slug("Module map") == "module-map"
    assert checker.github_slug("§4.6 Key Bijections!") == "46-key-bijections"
    assert (
        checker.github_slug("Out-of-core: sorting larger-than-memory files")
        == "out-of-core-sorting-larger-than-memory-files"
    )
