"""Tests for the host wall-clock benchmark harness."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.bench.wallclock import (
    DEFAULT_CASES,
    WallclockCase,
    run_case,
    run_suite,
    select_cases,
    write_report,
)


class TestCases:
    def test_default_cases_cover_widths_and_layouts(self):
        key_bits = {c.key_bits for c in DEFAULT_CASES}
        assert key_bits == {32, 64}
        assert any(c.value_bits for c in DEFAULT_CASES)
        assert any(not c.value_bits for c in DEFAULT_CASES)
        distributions = {c.distribution for c in DEFAULT_CASES}
        for required in ("uniform", "constant", "zipf", "presorted", "reverse"):
            assert required in distributions

    def test_make_input_shapes(self):
        rng = np.random.default_rng(0)
        case = WallclockCase("pairs", 32, 32, "uniform")
        keys, values = case.make_input(1000, rng)
        assert keys.size == values.size == 1000
        keys_only, none = WallclockCase("k", 64, 0, "and4").make_input(
            500, rng
        )
        assert keys_only.size == 500 and none is None

    def test_new_distributions_generate(self):
        rng = np.random.default_rng(0)
        for dist in ("zipf", "presorted", "reverse"):
            keys, _ = WallclockCase("x", 32, 0, dist).make_input(2000, rng)
            assert keys.size == 2000
        presorted, _ = WallclockCase("p", 32, 0, "presorted").make_input(
            2000, rng
        )
        assert np.all(presorted[:-1] <= presorted[1:])
        reverse, _ = WallclockCase("r", 32, 0, "reverse").make_input(2000, rng)
        assert np.all(reverse[:-1] >= reverse[1:])

    def test_unknown_distribution_rejected(self):
        with pytest.raises(ValueError):
            WallclockCase("x", 32, 0, "bogus").make_input(
                10, np.random.default_rng(0)
            )

    def test_select_cases(self):
        assert select_cases(None) == DEFAULT_CASES
        subset = select_cases("pairs32-uniform,keys32-zipf")
        assert [c.name for c in subset] == ["pairs32-uniform", "keys32-zipf"]
        with pytest.raises(SystemExit):
            select_cases("no-such-case")


class TestHarness:
    def test_run_case_reports_sorted_throughput(self):
        record = run_case(
            WallclockCase("keys32-uniform", 32, 0, "uniform"),
            n=4096,
            repeats=1,
        )
        assert record["sorted_ok"]
        assert record["mkeys_per_s"] > 0
        assert record["n"] == 4096
        assert record["workers"] == 1
        assert record["plan"]["strategy"] == "hybrid"
        # 4096 keys fit under the Table 3 local threshold (∂̂ = 9216).
        assert record["plan"]["steps"] == ["local-sort"]

    def test_run_case_verifies_pair_permutation(self):
        record = run_case(
            WallclockCase("pairs32-uniform", 32, 32, "uniform"),
            n=4096,
            repeats=1,
        )
        assert record["sorted_ok"]

    def test_run_case_with_workers(self):
        record = run_case(
            WallclockCase("pairs32-uniform", 32, 32, "uniform"),
            n=4096,
            repeats=1,
            workers=2,
        )
        assert record["sorted_ok"]
        assert record["workers"] == 2

    def test_suite_writes_valid_json(self, tmp_path):
        cases = (WallclockCase("keys32-uniform", 32, 0, "uniform"),)
        report = run_suite(n=2048, repeats=1, cases=cases, workers=2)
        path = tmp_path / "BENCH_wallclock.json"
        write_report(report, str(path))
        loaded = json.loads(path.read_text())
        assert loaded["schema"] == 4
        assert loaded["n"] == 2048
        assert loaded["workers"] == 2
        assert loaded["cases"] == ["keys32-uniform"]
        # The test environment pins REPRO_HOST_PROFILE at a missing
        # path (conftest), so the suite records no profile fingerprint
        # and the plan is priced from the paper constants.
        assert loaded["host_profile"] is None
        assert len(loaded["results"]) == 1
        record = loaded["results"][0]
        assert record["sorted_ok"]
        assert record["plan"]["cost_source"] == "paper-analytical"
        assert record["plan"]["profile_fingerprint"] is None
        assert record["prediction_ratio"] > 0

    def test_write_report_refuses_failed_verification(self, tmp_path):
        report = {
            "schema": 2,
            "results": [
                {"name": "good", "sorted_ok": True},
                {"name": "bad", "sorted_ok": False},
            ],
        }
        path = tmp_path / "BENCH_wallclock.json"
        with pytest.raises(ValueError, match="bad"):
            write_report(report, str(path))
        assert not path.exists()


class TestExternalCases:
    def test_external_family_in_defaults(self):
        engines = {c.engine for c in DEFAULT_CASES}
        assert engines == {"hybrid", "native", "external"}
        external = [c for c in DEFAULT_CASES if c.engine == "external"]
        assert {c.name for c in external} == {
            "external-keys32-uniform",
            "external-pairs32-uniform",
        }

    @pytest.mark.parametrize(
        "name", ["external-keys32-uniform", "external-pairs32-uniform"]
    )
    def test_external_case_runs_and_verifies(self, name):
        case = next(c for c in DEFAULT_CASES if c.name == name)
        record = run_case(case, 20_000, repeats=1, workers=2)
        assert record["sorted_ok"]
        assert record["engine"] == "external"
        assert record["seconds"] > 0
        assert record["plan"]["strategy"] == "external"
        assert record["plan"]["steps"] == ["spill-runs", "kway-merge"]
