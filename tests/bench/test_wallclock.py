"""Tests for the host wall-clock benchmark harness."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.bench.wallclock import (
    DEFAULT_CASES,
    WallclockCase,
    run_case,
    run_suite,
    write_report,
)


class TestCases:
    def test_default_cases_cover_widths_and_layouts(self):
        key_bits = {c.key_bits for c in DEFAULT_CASES}
        assert key_bits == {32, 64}
        assert any(c.value_bits for c in DEFAULT_CASES)
        assert any(not c.value_bits for c in DEFAULT_CASES)
        distributions = {c.distribution for c in DEFAULT_CASES}
        assert "uniform" in distributions
        assert "constant" in distributions

    def test_make_input_shapes(self):
        rng = np.random.default_rng(0)
        case = WallclockCase("pairs", 32, 32, "uniform")
        keys, values = case.make_input(1000, rng)
        assert keys.size == values.size == 1000
        keys_only, none = WallclockCase("k", 64, 0, "and4").make_input(
            500, rng
        )
        assert keys_only.size == 500 and none is None

    def test_unknown_distribution_rejected(self):
        with pytest.raises(ValueError):
            WallclockCase("x", 32, 0, "bogus").make_input(
                10, np.random.default_rng(0)
            )


class TestHarness:
    def test_run_case_reports_sorted_throughput(self):
        record = run_case(
            WallclockCase("keys32-uniform", 32, 0, "uniform"),
            n=4096,
            repeats=1,
        )
        assert record["sorted_ok"]
        assert record["mkeys_per_s"] > 0
        assert record["n"] == 4096

    def test_suite_writes_valid_json(self, tmp_path):
        cases = (WallclockCase("keys32-uniform", 32, 0, "uniform"),)
        report = run_suite(n=2048, repeats=1, cases=cases)
        path = tmp_path / "BENCH_wallclock.json"
        write_report(report, str(path))
        loaded = json.loads(path.read_text())
        assert loaded["schema"] == 1
        assert loaded["n"] == 2048
        assert len(loaded["results"]) == 1
        assert loaded["results"][0]["sorted_ok"]
