"""Tests for the scale-model simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.scaling import scaled_config, simulate_sort_at_scale
from repro.core.config import SortConfig
from repro.errors import ConfigurationError
from repro.workloads import constant_keys, generate_pairs, uniform_keys

GB = 1e9


class TestScaledConfig:
    def test_identity_at_full_scale(self):
        config = SortConfig.for_keys(32)
        assert scaled_config(config, 1.0) is config

    def test_thresholds_shrink(self):
        config = SortConfig.for_keys(32)
        scaled = scaled_config(config, 0.01)
        assert scaled.local_threshold < config.local_threshold
        assert scaled.merge_threshold < config.merge_threshold
        assert scaled.kpb < config.kpb

    def test_ladder_keeps_rung_count(self):
        config = SortConfig.for_keys(32)
        scaled = scaled_config(config, 0.005)
        assert len(scaled.local_sort_configs) == len(
            config.local_sort_configs
        )

    def test_ladder_strictly_ascending(self):
        config = SortConfig.for_keys(64)
        scaled = scaled_config(config, 0.001)
        ladder = scaled.local_sort_configs
        assert all(a < b for a, b in zip(ladder, ladder[1:]))

    def test_r3_preserved(self):
        for f in (0.5, 0.05, 0.002):
            scaled = scaled_config(SortConfig.for_pairs(64, 64), f)
            assert scaled.merge_threshold <= scaled.local_threshold

    def test_invalid_factor(self):
        with pytest.raises(ConfigurationError):
            scaled_config(SortConfig.for_keys(32), 0.0)
        with pytest.raises(ConfigurationError):
            scaled_config(SortConfig.for_keys(32), 1.5)

    def test_ablation_switches_survive(self):
        config = SortConfig.for_keys(32).with_ablations(lookahead=False)
        scaled = scaled_config(config, 0.01)
        assert not scaled.use_lookahead


class TestScaledSimulation:
    def test_paper_pass_structure_uniform_32(self, rng):
        # 500 M uniform 32-bit keys: two counting passes then local sorts.
        keys = uniform_keys(1 << 20, 32, rng)
        out = simulate_sort_at_scale(keys, 500_000_000)
        assert out.trace.num_counting_passes == 2
        assert out.trace.finished_early
        assert out.sorted_ok

    def test_paper_rate_uniform_32(self, rng):
        # Figure 6a peak: ~32 GB/s (62.6 ms for 2 GB).
        keys = uniform_keys(1 << 20, 32, rng)
        out = simulate_sort_at_scale(keys, 500_000_000)
        assert out.sorting_rate / GB == pytest.approx(32.0, rel=0.12)

    def test_paper_rate_64_64_pairs(self, rng):
        # §6.1: 2 GB of 64/64 pairs in ~56 ms.
        keys = uniform_keys(1 << 20, 64, rng)
        keys, values = generate_pairs(keys, 64)
        out = simulate_sort_at_scale(keys, 125_000_000, values=values)
        assert out.simulated_seconds == pytest.approx(0.056, rel=0.12)

    def test_constant_runs_all_passes(self):
        keys = constant_keys(1 << 18, 32)
        out = simulate_sort_at_scale(keys, 500_000_000)
        assert out.trace.num_counting_passes == 4
        assert not out.trace.finished_early

    def test_trace_scaled_to_target(self, rng):
        keys = uniform_keys(1 << 18, 32, rng)
        out = simulate_sort_at_scale(keys, 100_000_000)
        assert out.trace.n == 100_000_000
        assert out.trace.counting_passes[0].n_keys == 100_000_000

    def test_local_capacities_mapped_to_real_ladder(self, rng):
        keys = uniform_keys(1 << 18, 32, rng)
        out = simulate_sort_at_scale(keys, 100_000_000)
        real_ladder = set(SortConfig.for_keys(32).local_sort_configs)
        for trace in out.trace.local_sorts:
            for stats in trace.per_config:
                assert stats.capacity in real_ladder

    def test_full_scale_passthrough(self, rng):
        keys = uniform_keys(1 << 16, 32, rng)
        out = simulate_sort_at_scale(keys, keys.size)
        assert out.scale == 1.0
        assert out.trace.n == keys.size

    def test_target_smaller_than_sample_rejected(self, rng):
        keys = uniform_keys(1000, 32, rng)
        with pytest.raises(ConfigurationError):
            simulate_sort_at_scale(keys, 10)

    def test_empty_sample_rejected(self):
        with pytest.raises(ConfigurationError):
            simulate_sort_at_scale(np.empty(0, dtype=np.uint32), 100)

    def test_rate_scale_consistency(self, rng):
        # The same distribution priced at the same target from different
        # sample sizes must agree.
        big = simulate_sort_at_scale(
            uniform_keys(1 << 20, 32, rng), 500_000_000
        )
        small = simulate_sort_at_scale(
            uniform_keys(1 << 18, 32, rng), 500_000_000
        )
        assert big.simulated_seconds == pytest.approx(
            small.simulated_seconds, rel=0.1
        )
