"""Tests for the benchmark reporting helpers."""

from __future__ import annotations

from repro.bench.reporting import format_ratio, format_series, format_table
from repro.bench.runner import BenchmarkSettings, ExperimentResult


class TestFormatTable:
    def test_contains_headers_and_rows(self):
        text = format_table(["a", "bb"], [[1, 2], [30, 40]])
        lines = text.splitlines()
        assert "a" in lines[0] and "bb" in lines[0]
        assert "-" in lines[1]
        assert "30" in lines[3]

    def test_alignment_width(self):
        text = format_table(["col"], [["wide-value"]])
        header, rule, row = text.splitlines()
        assert len(header) == len(row)


class TestFormatSeries:
    def test_one_row_per_x(self):
        text = format_series(
            "entropy", [32, 16], {"HRS": [1.0, 2.0], "CUB": [0.5, 0.25]}
        )
        assert len(text.splitlines()) == 4
        assert "HRS (GB/s)" in text

    def test_precision(self):
        text = format_series("x", [1], {"s": [1.23456]}, precision=1)
        assert "1.2" in text


class TestFormatRatio:
    def test_speedup(self):
        assert format_ratio(2.32, 1.0) == "2.32x"

    def test_zero_denominator(self):
        assert format_ratio(1.0, 0.0) == "inf"


class TestExperimentResult:
    def test_add_point(self):
        r = ExperimentResult(experiment="fig6a", x_label="entropy")
        r.add_point(32.0, hrs=30.0, cub=15.0)
        r.add_point(0.0, hrs=25.0, cub=15.0)
        assert r.x_values == [32.0, 0.0]
        assert r.series["hrs"] == [30.0, 25.0]

    def test_headline(self):
        r = ExperimentResult(experiment="fig6a", x_label="entropy")
        r.headline("min_speedup_vs_cub", 1.69)
        assert r.headlines["min_speedup_vs_cub"] == 1.69


class TestBenchmarkSettings:
    def test_defaults(self):
        s = BenchmarkSettings()
        assert s.sample_n == 1 << 20

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_N", "4096")
        monkeypatch.setenv("REPRO_BENCH_SEED", "7")
        s = BenchmarkSettings.from_env()
        assert s.sample_n == 4096
        assert s.seed == 7

    def test_rng_salted(self):
        s = BenchmarkSettings()
        a = s.rng(0).integers(0, 100, 5)
        b = s.rng(1).integers(0, 100, 5)
        assert not (a == b).all()
