"""Tests for the rarefaction/species machinery in the scale model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.scaling import (
    _bucket_population_cap,
    _extrapolate_species,
    _inflate_local_buckets,
    simulate_sort_at_scale,
)
from repro.core.config import SortConfig
from repro.types import LocalConfigStats, LocalSortTrace
from repro.workloads import generate_entropy_keys, uniform_keys


def _local_trace(buckets: int, capacity: int = 128, keys_per: int = 50):
    return LocalSortTrace(
        pass_index=1,
        per_config=(
            LocalConfigStats(
                capacity=capacity,
                n_buckets=buckets,
                total_keys=buckets * keys_per,
                provisioned_keys=buckets * capacity,
                avg_remaining_digits=2.0,
            ),
        ),
        key_bytes=4,
        value_bytes=0,
    )


class TestInflation:
    def test_factor_one_is_identity(self):
        traces = (_local_trace(100),)
        out = _inflate_local_buckets(traces, 1.0, cap=10_000,
                                     real_ladder=(128, 9216), inv=100.0)
        assert out[0].total_buckets == 100

    def test_inflation_adds_tiny_buckets(self):
        traces = (_local_trace(100),)
        out = _inflate_local_buckets(traces, 3.0, cap=10_000,
                                     real_ladder=(128, 9216), inv=100.0)
        assert out[0].total_buckets == 300
        # Extra buckets join the rung covering ~inv/2-key buckets.
        assert out[0].per_config[0].capacity == 128

    def test_cap_limits_inflation(self):
        traces = (_local_trace(100),)
        out = _inflate_local_buckets(traces, 1000.0, cap=250,
                                     real_ladder=(128, 9216), inv=100.0)
        assert out[0].total_buckets == 250

    def test_share_proportional_across_traces(self):
        traces = (_local_trace(100), _local_trace(300))
        out = _inflate_local_buckets(traces, 2.0, cap=10_000,
                                     real_ladder=(128, 9216), inv=100.0)
        total = sum(t.total_buckets for t in out)
        assert total == pytest.approx(800, abs=2)
        assert out[1].total_buckets > out[0].total_buckets


class TestExtrapolation:
    def test_uniform_distribution_measures_no_growth(self, rng):
        # A saturated population (uniform 32-bit at modest depth) must
        # not inflate.
        keys = uniform_keys(1 << 18, 32, rng)
        config = SortConfig.for_keys(32).with_ablations(bucket_merging=False)
        factor = _extrapolate_species(
            keys, None, config, f=(1 << 18) / 500_000_000,
            observed_buckets=65_536,
        )
        assert factor == pytest.approx(1.0, abs=0.5)

    def test_skewed_distribution_grows(self, rng):
        from repro.bench.scaling import _total_local_buckets, scaled_config
        from repro.core.hybrid_sort import HybridRadixSorter

        keys = generate_entropy_keys(1 << 18, 64, 1, rng)
        config = SortConfig.for_keys(64).with_ablations(bucket_merging=False)
        f = (1 << 18) / 250_000_000
        run = HybridRadixSorter(config=scaled_config(config, f)).sort(keys)
        observed = _total_local_buckets(run.trace)
        factor = _extrapolate_species(
            keys, None, config, f=f, observed_buckets=observed
        )
        assert factor > 1.5

    def test_tiny_sample_returns_identity(self):
        keys = np.zeros(100, dtype=np.uint32)
        config = SortConfig.for_keys(32)
        assert _extrapolate_species(keys, None, config, 0.01, 10) == 1.0


class TestCap:
    def test_cap_excludes_final_pass(self, rng):
        keys = generate_entropy_keys(1 << 16, 32, None, rng)  # constant
        out = simulate_sort_at_scale(keys, 10_000_000)
        cap = _bucket_population_cap(out.trace, SortConfig.for_keys(32))
        # Constant input: one parent per non-final pass, 3 passes count.
        assert cap == 3 * 256

    def test_cap_positive_for_empty_traces(self):
        from repro.types import SortTrace

        trace = SortTrace(
            n=0, key_bits=32, value_bits=0, counting_passes=(),
            local_sorts=(), finished_early=True, final_buffer_index=0,
        )
        assert _bucket_population_cap(trace, SortConfig.for_keys(32)) == 1


class TestEndToEndSpecies:
    def test_extrapolation_only_when_merging_disabled(self, rng):
        keys = generate_entropy_keys(1 << 18, 64, 1, rng)
        merged = simulate_sort_at_scale(keys, 250_000_000)
        config = SortConfig.for_keys(64).with_ablations(bucket_merging=False)
        unmerged = simulate_sort_at_scale(keys, 250_000_000, config=config)
        unmerged_off = simulate_sort_at_scale(
            keys, 250_000_000, config=config, species_extrapolation=False
        )
        # The extrapolation makes the unmerged run slower than both the
        # merged baseline and the uncorrected unmerged run.
        assert unmerged.simulated_seconds > merged.simulated_seconds
        assert unmerged.simulated_seconds >= unmerged_off.simulated_seconds
