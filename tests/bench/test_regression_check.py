"""Tests for the CI wall-clock regression guard script."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

_SCRIPT = (
    Path(__file__).resolve().parents[2]
    / "benchmarks"
    / "check_wallclock_regression.py"
)
_spec = importlib.util.spec_from_file_location("check_wallclock", _SCRIPT)
check = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check)


def _write(path: Path, rates: dict[str, float]) -> str:
    report = {
        "results": [
            {"name": name, "mkeys_per_s": rate} for name, rate in rates.items()
        ]
    }
    path.write_text(json.dumps(report))
    return str(path)


class TestRegressionCheck:
    def test_passes_within_tolerance(self, tmp_path):
        base = _write(tmp_path / "base.json", {"pairs32-uniform": 10.0})
        cur = _write(tmp_path / "cur.json", {"pairs32-uniform": 8.5})
        assert check.main(["--baseline", base, "--current", cur]) == 0

    def test_fails_beyond_tolerance(self, tmp_path):
        base = _write(tmp_path / "base.json", {"pairs32-uniform": 10.0})
        cur = _write(tmp_path / "cur.json", {"pairs32-uniform": 7.9})
        assert check.main(["--baseline", base, "--current", cur]) == 1

    def test_custom_threshold_and_cases(self, tmp_path):
        base = _write(
            tmp_path / "base.json", {"a": 10.0, "b": 10.0}
        )
        cur = _write(tmp_path / "cur.json", {"a": 9.6, "b": 5.0})
        assert (
            check.main(
                ["--baseline", base, "--current", cur,
                 "--case", "a", "--max-regression", "0.05"]
            )
            == 0
        )
        assert (
            check.main(
                ["--baseline", base, "--current", cur,
                 "--case", "a", "--case", "b"]
            )
            == 1
        )

    def test_missing_current_case_fails(self, tmp_path):
        base = _write(tmp_path / "base.json", {"pairs32-uniform": 10.0})
        cur = _write(tmp_path / "cur.json", {"other": 10.0})
        assert check.main(["--baseline", base, "--current", cur]) == 1

    def test_case_absent_from_baseline_skips(self, tmp_path):
        base = _write(tmp_path / "base.json", {"other": 10.0})
        cur = _write(tmp_path / "cur.json", {"pairs32-uniform": 1.0})
        assert check.main(["--baseline", base, "--current", cur]) == 0
