"""Tests for the CI wall-clock regression guard script."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

_SCRIPT = (
    Path(__file__).resolve().parents[2]
    / "benchmarks"
    / "check_wallclock_regression.py"
)
_spec = importlib.util.spec_from_file_location("check_wallclock", _SCRIPT)
check = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check)


def _write(path: Path, rates: dict[str, float]) -> str:
    report = {
        "results": [
            {"name": name, "mkeys_per_s": rate} for name, rate in rates.items()
        ]
    }
    path.write_text(json.dumps(report))
    return str(path)


class TestRegressionCheck:
    def test_passes_within_tolerance(self, tmp_path):
        base = _write(tmp_path / "base.json", {"pairs32-uniform": 10.0})
        cur = _write(tmp_path / "cur.json", {"pairs32-uniform": 8.5})
        assert check.main(["--baseline", base, "--current", cur]) == 0

    def test_fails_beyond_tolerance(self, tmp_path):
        base = _write(tmp_path / "base.json", {"pairs32-uniform": 10.0})
        cur = _write(tmp_path / "cur.json", {"pairs32-uniform": 7.9})
        assert check.main(["--baseline", base, "--current", cur]) == 1

    def test_custom_threshold_and_cases(self, tmp_path):
        base = _write(
            tmp_path / "base.json", {"a": 10.0, "b": 10.0}
        )
        cur = _write(tmp_path / "cur.json", {"a": 9.6, "b": 5.0})
        assert (
            check.main(
                ["--baseline", base, "--current", cur,
                 "--case", "a", "--max-regression", "0.05"]
            )
            == 0
        )
        assert (
            check.main(
                ["--baseline", base, "--current", cur,
                 "--case", "a", "--case", "b"]
            )
            == 1
        )

    def test_missing_current_case_fails(self, tmp_path, capsys):
        base = _write(tmp_path / "base.json", {"pairs32-uniform": 10.0})
        cur = _write(tmp_path / "cur.json", {"other": 10.0})
        assert check.main(["--baseline", base, "--current", cur]) == 1
        out = capsys.readouterr().out
        assert "FAIL pairs32-uniform: missing from current report" in out
        assert "known: other" in out

    def test_case_absent_from_baseline_fails(self, tmp_path, capsys):
        # A silently skipped case would let the gate pass while
        # guarding nothing — missing-from-baseline is a hard failure.
        base = _write(tmp_path / "base.json", {"other": 10.0})
        cur = _write(tmp_path / "cur.json", {"pairs32-uniform": 1.0})
        assert check.main(["--baseline", base, "--current", cur]) == 1
        out = capsys.readouterr().out
        assert "FAIL pairs32-uniform: missing from baseline report" in out
        assert "known: other" in out

    def test_missing_case_fails_even_when_present_cases_pass(self, tmp_path):
        base = _write(tmp_path / "base.json", {"a": 10.0})
        cur = _write(tmp_path / "cur.json", {"a": 10.0})
        assert (
            check.main(
                ["--baseline", base, "--current", cur,
                 "--case", "a", "--case", "ghost"]
            )
            == 1
        )

    def test_cases_from_baseline_checks_everything(self, tmp_path):
        base = _write(tmp_path / "base.json", {"a": 10.0, "b": 10.0})
        ok = _write(tmp_path / "ok.json", {"a": 9.5, "b": 9.5})
        slow = _write(tmp_path / "slow.json", {"a": 9.5, "b": 5.0})
        partial = _write(tmp_path / "partial.json", {"a": 9.5})
        args = ["--baseline", base, "--cases-from-baseline"]
        assert check.main([*args, "--current", ok]) == 0
        assert check.main([*args, "--current", slow]) == 1
        assert check.main([*args, "--current", partial]) == 1

    def test_empty_baseline_fails_instead_of_guarding_nothing(
        self, tmp_path, capsys
    ):
        base = _write(tmp_path / "base.json", {})
        cur = _write(tmp_path / "cur.json", {"a": 9.5})
        assert (
            check.main(
                ["--baseline", base, "--current", cur,
                 "--cases-from-baseline"]
            )
            == 1
        )
        assert "no cases to check" in capsys.readouterr().out

    def test_cases_from_baseline_unions_explicit_cases(self, tmp_path):
        # An explicitly requested case is never silently dropped: here
        # "ghost" is in neither report, so the gate must fail.
        base = _write(tmp_path / "base.json", {"a": 10.0})
        cur = _write(tmp_path / "cur.json", {"a": 9.5})
        args = ["--baseline", base, "--current", cur,
                "--cases-from-baseline"]
        assert check.main(args) == 0
        assert check.main([*args, "--case", "ghost"]) == 1
