"""Oracle tests: planner-routed execution is bit-identical to the engines.

The refactor's contract is that the plan layer only *chooses* — every
facade output must be byte-for-byte what the pre-planner engine
produced.  The oracles here are the engines called directly
(``HybridRadixSorter``, ``CubRadixSort``) and NumPy's stable sort.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.baselines.cub import CubRadixSort
from repro.core.hybrid_sort import HybridRadixSorter
from repro.errors import ConfigurationError
from repro.external import FileLayout, read_records, write_records
from repro.plan import (
    DEFAULT_REGISTRY,
    ExecutorRegistry,
    InputDescriptor,
    Planner,
    execute_plan,
)

key_lists = st.lists(
    st.integers(0, 2**32 - 1), min_size=0, max_size=400
)


class TestHybridOracle:
    @given(raw=key_lists)
    @settings(max_examples=40, deadline=None)
    def test_facade_equals_engine_keys(self, raw):
        keys = np.array(raw, dtype=np.uint32)
        facade = repro.sort(keys)
        oracle = HybridRadixSorter().sort(keys)
        assert np.array_equal(facade.keys, oracle.keys)
        assert facade.meta["plan"].strategy == "hybrid"

    @given(raw=key_lists)
    @settings(max_examples=25, deadline=None)
    def test_facade_equals_engine_pairs(self, raw):
        keys = np.array(raw, dtype=np.uint32)
        values = np.arange(keys.size, dtype=np.uint32)
        facade = repro.sort_pairs(keys, values)
        oracle = HybridRadixSorter().sort(keys, values)
        assert np.array_equal(facade.keys, oracle.keys)
        assert np.array_equal(facade.values, oracle.values)

    @pytest.mark.parametrize(
        "dtype", [np.uint32, np.uint64, np.int32, np.int64,
                  np.float32, np.float64]
    )
    def test_every_dtype_routes_and_matches(self, dtype, rng):
        keys = rng.integers(0, 2**31, 5_000).astype(dtype)
        facade = repro.sort(keys)
        oracle = HybridRadixSorter().sort(keys)
        assert facade.keys.dtype == np.dtype(dtype)
        assert np.array_equal(facade.keys, oracle.keys)

    def test_workers_kwarg_is_bit_identical(self, rng):
        keys = rng.integers(0, 2**32, 60_000, dtype=np.uint64).astype(
            np.uint32
        )
        values = np.arange(keys.size, dtype=np.uint32)
        serial = repro.sort_pairs(keys, values)
        threaded = repro.sort_pairs(keys, values, workers=4)
        assert np.array_equal(serial.keys, threaded.keys)
        assert np.array_equal(serial.values, threaded.values)

    def test_records_facade_keeps_recomposition(self, rng):
        from repro.core.pairs import make_records

        keys = rng.integers(0, 2**32, 3_000, dtype=np.uint64).astype(
            np.uint32
        )
        values = np.arange(keys.size, dtype=np.uint32)
        result = repro.sort_records(make_records(keys, values))
        assert np.array_equal(result.meta["records"]["key"], result.keys)
        assert result.meta["plan"].strategy == "hybrid"


class TestAdaptiveOracle:
    @given(
        n=st.integers(0, 3000),
        crossover=st.integers(0, 3000),
    )
    @settings(max_examples=30, deadline=None)
    def test_dispatch_matches_manual_oracle(self, n, crossover):
        keys = (np.arange(n, dtype=np.uint32) * 2654435761) % (2**31)
        sorter = repro.AdaptiveSorter(key_crossover=crossover)
        result = sorter.sort(keys)
        if n >= crossover:
            oracle = HybridRadixSorter().sort(keys)
            assert result.meta["engine"] == "hybrid"
        else:
            oracle = CubRadixSort("1.5.1").sort(keys)
            assert result.meta["engine"] == "cub-fallback"
        assert np.array_equal(result.keys, oracle.keys)
        assert result.meta["plan"].strategy in ("hybrid", "fallback")


class TestHeteroOracle:
    def test_budgeted_facade_equals_in_memory(self, rng):
        keys = rng.integers(0, 2**32, 80_000, dtype=np.uint64).astype(
            np.uint32
        )
        values = np.arange(keys.size, dtype=np.uint32)
        budget = (keys.nbytes + values.nbytes) // 3
        chunked = repro.sort_pairs(keys, values, memory_budget=budget)
        oracle = HybridRadixSorter().sort(keys, values)
        assert chunked.meta["engine"] == "hetero"
        assert chunked.meta["plan"].chunk_plan.n_chunks > 1
        assert np.array_equal(chunked.keys, oracle.keys)
        assert np.array_equal(chunked.values, oracle.values)

    def test_hetero_sorter_unchanged_by_refactor(self, rng):
        from repro.hetero.sorter import HeterogeneousSorter

        keys = rng.integers(0, 2**32, 65_537, dtype=np.uint64)
        out = HeterogeneousSorter().sort(keys, n_chunks=3)
        assert np.array_equal(out.keys, np.sort(keys))
        assert out.meta["plan"].strategy == "hetero"
        assert out.plan.n_chunks == 3


class TestExternalOracle:
    def test_file_facade_equals_in_memory(self, tmp_path, rng):
        keys = rng.integers(0, 2**32, 20_000, dtype=np.uint64).astype(
            np.uint32
        )
        inp = tmp_path / "in.bin"
        outp = tmp_path / "out.bin"
        write_records(inp, keys)
        report = repro.sort(
            str(inp), output=outp, dtype="uint32", memory_budget=16_384
        )
        assert report.n_runs > 1
        assert report.plan.strategy == "external"
        got = read_records(outp, FileLayout(np.uint32))
        assert np.array_equal(got, np.sort(keys))

    def test_layout_object_and_pathlike_inputs(self, tmp_path, rng):
        layout = FileLayout(np.uint32, np.uint32)
        keys = rng.integers(0, 100, 5_000, dtype=np.uint64).astype(np.uint32)
        values = np.arange(keys.size, dtype=np.uint32)
        inp = tmp_path / "pairs.bin"
        outp = tmp_path / "sorted.bin"
        write_records(inp, layout.to_records(keys, values))
        report = repro.sort(
            inp, output=outp, layout=layout, memory_budget=8_192
        )
        oracle = HybridRadixSorter().sort(keys, values)
        got_keys, got_values = layout.to_columns(
            read_records(outp, layout)
        )
        assert np.array_equal(got_keys, oracle.keys)
        assert np.array_equal(got_values, oracle.values)
        assert report.plan.descriptor.workers == 1

    def test_file_sort_requires_output_and_layout(self, tmp_path):
        inp = tmp_path / "in.bin"
        np.arange(10, dtype=np.uint32).tofile(inp)
        with pytest.raises(ConfigurationError):
            repro.sort(str(inp), dtype="uint32")
        with pytest.raises(ConfigurationError):
            repro.sort(str(inp), output=tmp_path / "out.bin")

    def test_array_sort_rejects_file_only_kwargs(self, tmp_path):
        # output= on an array would otherwise be silently dead — no
        # file written, no error.
        keys = np.arange(100, dtype=np.uint32)
        with pytest.raises(ConfigurationError, match="file-path"):
            repro.sort(keys, output=tmp_path / "out.bin")
        with pytest.raises(ConfigurationError, match="file-path"):
            repro.sort(keys, dtype="uint32")
        with pytest.raises(ConfigurationError, match="file-path"):
            repro.sort(keys, pair_packing="fused")


class TestRegistry:
    def test_unknown_strategy_errors(self):
        desc = InputDescriptor(n=10, key_dtype=np.uint32)
        plan = Planner().plan(desc)
        object.__setattr__(plan, "strategy", "quantum")
        with pytest.raises(ConfigurationError):
            execute_plan(plan, keys=np.arange(10, dtype=np.uint32))

    def test_custom_registry_extends_without_touching_default(self):
        registry = ExecutorRegistry()
        registry.register("hybrid", lambda plan, **io: "custom")
        desc = InputDescriptor(n=10, key_dtype=np.uint32)
        plan = Planner().plan(desc)
        assert execute_plan(plan, registry=registry) == "custom"
        assert "hybrid" in DEFAULT_REGISTRY.strategies()
        assert set(DEFAULT_REGISTRY.strategies()) == {
            "hybrid", "fallback", "hetero", "external", "oracle", "sharded",
            "native",
        }
