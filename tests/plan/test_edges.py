"""Edge cases: empty and single-element inputs through every facade.

Each facade must return a *well-formed* result — correct dtypes, a
plan in the metadata, no crashes — for the degenerate sizes that tend
to slip through size-driven dispatch logic.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core.pairs import make_records
from repro.external import FileLayout, read_records, write_records
from repro.plan import InputDescriptor, Planner


@pytest.mark.parametrize("n", [0, 1])
class TestArrayFacades:
    def test_sort(self, n):
        keys = np.arange(n, dtype=np.uint32)
        result = repro.sort(keys)
        assert result.keys.shape == (n,)
        assert result.keys.dtype == np.uint32
        assert result.values is None
        assert result.meta["plan"].strategy == "hybrid"

    def test_sort_pairs(self, n):
        keys = np.arange(n, dtype=np.uint64)
        values = np.arange(n, dtype=np.uint64)
        result = repro.sort_pairs(keys, values)
        assert result.keys.shape == (n,)
        assert result.values.shape == (n,)
        assert result.values.dtype == np.uint64

    def test_sort_records(self, n):
        records = make_records(
            np.arange(n, dtype=np.uint32), np.arange(n, dtype=np.uint32)
        )
        result = repro.sort_records(records)
        assert result.meta["records"].shape == (n,)

    def test_adaptive(self, n):
        result = repro.AdaptiveSorter().sort(np.arange(n, dtype=np.uint32))
        assert result.keys.shape == (n,)
        assert result.meta["engine"] == "cub-fallback"

    def test_sort_with_budget(self, n):
        # A degenerate input always fits any budget: stays in memory.
        result = repro.sort(
            np.arange(n, dtype=np.uint32), memory_budget=1 << 20
        )
        assert result.keys.shape == (n,)
        assert result.meta["plan"].strategy == "hybrid"

    def test_planner_path(self, n):
        desc = InputDescriptor(n=n, key_dtype=np.uint32)
        plan = Planner().plan(desc)
        assert plan.strategy == "hybrid"
        assert [s.kind for s in plan.steps] == ["local-sort"]
        assert plan.predicted_seconds >= 0.0


@pytest.mark.parametrize("n", [0, 1])
class TestFileFacade:
    def test_sort_file(self, tmp_path, n):
        layout = FileLayout(np.uint32)
        inp = tmp_path / "in.bin"
        outp = tmp_path / "out.bin"
        write_records(inp, np.arange(n, dtype=np.uint32))
        report = repro.sort(inp, output=outp, layout=layout)
        assert report.n_records == n
        assert report.plan.strategy == "external"
        assert read_records(outp, layout).shape == (n,)

    def test_external_sorter_direct(self, tmp_path, n):
        from repro.external import ExternalSorter

        layout = FileLayout(np.uint32, np.uint32)
        inp = tmp_path / "in.bin"
        outp = tmp_path / "out.bin"
        write_records(
            inp,
            layout.to_records(
                np.arange(n, dtype=np.uint32), np.arange(n, dtype=np.uint32)
            ),
        )
        report = ExternalSorter(memory_budget=4096).sort_file(
            inp, outp, layout
        )
        assert report.n_records == n
        assert report.plan is not None
        assert report.plan.run_plan.n_records == n


class TestSingleElementValues:
    def test_pair_value_survives(self):
        result = repro.sort_pairs(
            np.array([7], dtype=np.uint32), np.array([42], dtype=np.uint32)
        )
        assert result.keys.tolist() == [7]
        assert result.values.tolist() == [42]

    def test_empty_plan_explain_renders(self):
        plan = Planner().plan(InputDescriptor(n=0, key_dtype=np.uint32))
        text = plan.explain()
        assert "0" in text and "hybrid" in text
