"""Tests for the sort planner: descriptors, strategy choice, the IR.

Planning is a pure function of the descriptor — deterministic, cheap,
and data-free — and its budget arithmetic must be *the same* arithmetic
the engines used before the refactor (``plan_chunks``/``plan_runs``),
not a reimplementation that can drift.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.external.format import FileLayout
from repro.external.runs import plan_runs
from repro.hetero.chunking import plan_chunks
from repro.plan import (
    PAPER_CROSSOVER_KEYS,
    PAPER_CROSSOVER_PAIRS,
    InputDescriptor,
    Planner,
    PlanStep,
    SortPlan,
)


class TestInputDescriptor:
    def test_for_array_records_geometry(self):
        keys = np.zeros(1000, dtype=np.uint64)
        values = np.zeros(1000, dtype=np.uint32)
        desc = InputDescriptor.for_array(keys, values)
        assert desc.n == 1000
        assert desc.key_bits == 64
        assert desc.value_bits == 32
        assert desc.record_bytes == 12
        assert desc.total_bytes == 12_000
        assert desc.source == "array"

    def test_for_file_reads_size_only(self, tmp_path):
        path = tmp_path / "data.bin"
        np.arange(500, dtype=np.uint32).tofile(path)
        desc = InputDescriptor.for_file(path, FileLayout(np.uint32))
        assert desc.n == 500
        assert desc.source == "file"
        assert desc.path == str(path)

    def test_float_keys_use_bits_width(self):
        desc = InputDescriptor.for_array(np.zeros(4, dtype=np.float64))
        assert desc.key_bits == 64

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            InputDescriptor(n=-1, key_dtype=np.uint32)
        with pytest.raises(ConfigurationError):
            InputDescriptor(n=1, key_dtype=np.uint32, source="tape")
        with pytest.raises(ConfigurationError):
            InputDescriptor(n=1, key_dtype=np.uint32, source="file")
        with pytest.raises(ConfigurationError):
            InputDescriptor(n=1, key_dtype=np.uint32, memory_budget=0)
        with pytest.raises(ConfigurationError):
            InputDescriptor(n=1, key_dtype=np.uint32, workers=0)
        with pytest.raises(ConfigurationError):
            InputDescriptor.for_array(np.zeros((2, 2), dtype=np.uint32))

    def test_to_dict_is_json_ready(self):
        desc = InputDescriptor.for_array(np.zeros(8, dtype=np.int32))
        json.dumps(desc.to_dict())


class TestStrategyChoice:
    def test_array_defaults_to_hybrid(self):
        # native="never" pins the NumPy tier: the default planner may
        # upgrade a large array to the compiled tier when the host has
        # it (TestNativeChoice covers that dispatch).
        desc = InputDescriptor(n=1 << 20, key_dtype=np.uint32)
        plan = Planner(native="never").plan(desc)
        assert plan.strategy == "hybrid"
        assert [s.kind for s in plan.steps] == ["hybrid-msd"]

    def test_tiny_array_plans_one_local_sort(self):
        desc = InputDescriptor(n=100, key_dtype=np.uint32)
        plan = Planner().plan(desc)
        assert [s.kind for s in plan.steps] == ["local-sort"]

    def test_adaptive_small_input_falls_back(self):
        desc = InputDescriptor(n=100_000, key_dtype=np.uint32)
        assert Planner(native="never").plan(desc).strategy == "hybrid"
        plan = Planner(adaptive=True, native="never").plan(desc)
        assert plan.strategy == "fallback"
        assert [s.kind for s in plan.steps] == ["lsd-fallback"]

    def test_budget_overflow_plans_chunked_pipeline(self):
        desc = InputDescriptor(
            n=1 << 20, key_dtype=np.uint32, memory_budget=1 << 20
        )
        plan = Planner().plan(desc)
        assert plan.strategy == "hetero"
        assert [s.kind for s in plan.steps] == [
            "chunked-pipeline", "kway-merge",
        ]

    def test_budget_fitting_input_stays_hybrid(self):
        desc = InputDescriptor(
            n=1000, key_dtype=np.uint32, memory_budget=1 << 20
        )
        assert Planner().plan(desc).strategy == "hybrid"

    def test_file_plans_external(self, tmp_path):
        path = tmp_path / "in.bin"
        np.arange(10_000, dtype=np.uint32).tofile(path)
        desc = InputDescriptor.for_file(
            path, FileLayout(np.uint32), memory_budget=8192
        )
        plan = Planner().plan(desc)
        assert plan.strategy == "external"
        assert [s.kind for s in plan.steps] == ["spill-runs", "kway-merge"]
        assert plan.run_plan.n_runs > 1

    def test_planning_is_deterministic(self):
        desc = InputDescriptor(
            n=123_456, key_dtype=np.uint64, value_dtype=np.uint64,
            memory_budget=1 << 20,
        )
        assert Planner().plan(desc) == Planner().plan(desc)


class TestBudgetLogicUnification:
    """The planner's sizing equals the engines' historical arithmetic."""

    def test_chunked_plan_matches_plan_chunks(self):
        desc = InputDescriptor(
            n=1 << 20, key_dtype=np.uint32, memory_budget=1 << 20
        )
        plan = Planner().plan(desc)
        assert plan.chunk_plan == plan_chunks(
            desc.total_bytes, budget_bytes=desc.memory_budget
        )

    def test_hetero_device_plan_matches_plan_chunks(self):
        desc = InputDescriptor(n=1 << 20, key_dtype=np.uint64)
        plan = Planner().plan_chunked(desc, n_chunks=4)
        assert plan.chunk_plan == plan_chunks(desc.total_bytes, n_chunks=4)

    def test_external_plan_matches_plan_runs(self, tmp_path):
        path = tmp_path / "in.bin"
        np.arange(9_999, dtype=np.uint32).tofile(path)
        desc = InputDescriptor.for_file(
            path, FileLayout(np.uint32), memory_budget=16_384
        )
        plan = Planner().plan(desc)
        assert plan.run_plan == plan_runs(9_999, 4, 16_384)

    def test_larger_budget_never_needs_more_runs(self, tmp_path):
        path = tmp_path / "in.bin"
        np.arange(50_000, dtype=np.uint32).tofile(path)
        runs = [
            Planner().plan(
                InputDescriptor.for_file(
                    path, FileLayout(np.uint32), memory_budget=budget
                )
            ).run_plan.n_runs
            for budget in (8 << 10, 32 << 10, 128 << 10)
        ]
        assert runs == sorted(runs, reverse=True)

    def test_empty_chunked_plan_rejected(self):
        desc = InputDescriptor(n=0, key_dtype=np.uint32)
        with pytest.raises(ConfigurationError):
            Planner().plan_chunked(desc)


class TestAdaptiveDispatchProperty:
    """Planner dispatch reproduces ``chooses_hybrid`` exactly (§6.1)."""

    @given(
        n=st.integers(0, 4_000_000),
        has_values=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_strategy_equals_case_distinction(self, n, has_values):
        planner = Planner(adaptive=True, native="never")
        desc = InputDescriptor(
            n=n,
            key_dtype=np.uint32,
            value_dtype=np.uint32 if has_values else None,
        )
        plan = planner.plan(desc)
        expected_hybrid = planner.chooses_hybrid(n, has_values)
        assert (plan.strategy == "hybrid") == expected_hybrid
        assert (plan.strategy == "fallback") == (not expected_hybrid)

    def test_crossover_boundary_is_inclusive(self):
        planner = Planner(adaptive=True, native="never")
        at = InputDescriptor(n=PAPER_CROSSOVER_KEYS, key_dtype=np.uint32)
        below = InputDescriptor(
            n=PAPER_CROSSOVER_KEYS - 1, key_dtype=np.uint32
        )
        assert planner.plan(at).strategy == "hybrid"
        assert planner.plan(below).strategy == "fallback"
        pairs_at = InputDescriptor(
            n=PAPER_CROSSOVER_PAIRS, key_dtype=np.uint32,
            value_dtype=np.uint32,
        )
        assert planner.plan(pairs_at).strategy == "hybrid"

    def test_negative_crossover_rejected(self):
        with pytest.raises(ConfigurationError):
            Planner(key_crossover=-1)


class TestPlanIR:
    def test_unknown_step_kind_rejected(self):
        with pytest.raises(ValueError):
            PlanStep(kind="teleport")

    def test_step_lookup(self):
        desc = InputDescriptor(n=10, key_dtype=np.uint32)
        plan = Planner().plan(desc)
        assert plan.step("local-sort").kind == "local-sort"
        with pytest.raises(KeyError):
            plan.step("spill-runs")

    def test_to_dict_json_round_trip(self, tmp_path):
        path = tmp_path / "in.bin"
        np.arange(5_000, dtype=np.uint32).tofile(path)
        desc = InputDescriptor.for_file(
            path, FileLayout(np.uint32), memory_budget=8192
        )
        plan = Planner().plan(desc)
        payload = json.loads(json.dumps(plan.to_dict()))
        assert payload["strategy"] == "external"
        assert payload["descriptor"]["n"] == 5_000
        assert [s["kind"] for s in payload["steps"]] == [
            "spill-runs", "kway-merge",
        ]
        assert payload["predicted_seconds"] > 0

    def test_explain_mentions_strategy_and_steps(self):
        desc = InputDescriptor(
            n=1 << 21, key_dtype=np.uint32, memory_budget=1 << 20
        )
        text = Planner().plan(desc).explain()
        assert "strategy        : hetero" in text
        assert "chunked-pipeline" in text
        assert "predicted total" in text

    def test_predictions_are_positive_and_additive(self):
        desc = InputDescriptor(n=1 << 20, key_dtype=np.uint64)
        plan = Planner().plan(desc)
        assert plan.predicted_seconds > 0
        assert plan.predicted_seconds == pytest.approx(
            sum(s.predicted_seconds for s in plan.steps)
        )
        assert isinstance(plan, SortPlan)
