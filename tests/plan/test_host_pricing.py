"""Host-calibrated planning: determinism, provenance, serialised shape.

The contract under test: a host profile changes *predicted seconds*,
never a plan's structure; planning stays a deterministic function of
(descriptor, profile); and every plan records which cost tier priced it
(``cost_source`` + ``profile_fingerprint``) all the way into
``to_dict()`` — the shape the bench reports and the service API expose.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cost.hostprofile import PROFILE_SCHEMA, HostProfile, save_profile
from repro.external.format import FileLayout
from repro.plan import InputDescriptor, Planner

SYNTHETIC_PROFILE = {
    "schema": PROFILE_SCHEMA,
    "created": 99.0,
    "host": {"platform": "test", "cpu_count": 4},
    "probes": {"n": 1024, "repeats": 1, "quick": True, "seed": 1},
    "counting_bandwidth": {
        "32/0": 2.0e8, "64/0": 1.5e8, "32/32": 1.2e8, "64/64": 1.0e8,
    },
    "native_bandwidth": {"32/0": 6.0e8, "64/0": 5.0e8},
    "local_sort_keys_per_s": 2.0e7,
    "pack_bandwidth": 2.0e9,
    "spill_bandwidth": 1.0e8,
    "merge_bandwidth": 2.0e8,
    "thread_speedup": {"1": 1.0, "2": 1.5},
    "shard_speedup": {"1": 1.0, "2": 1.3},
}


@pytest.fixture
def profile_path(tmp_path):
    path = tmp_path / "host-profile.json"
    save_profile(SYNTHETIC_PROFILE, path)
    return str(path)


def various_descriptors(tmp_path):
    array = InputDescriptor(n=4_000_000, key_dtype=np.uint32)
    pairs = InputDescriptor(
        n=2_000_000, key_dtype=np.uint64, value_dtype=np.uint64
    )
    small = InputDescriptor(n=500, key_dtype=np.uint32)
    budgeted = InputDescriptor(
        n=4_000_000, key_dtype=np.uint32, memory_budget=1 << 22
    )
    sharded = InputDescriptor(n=4_000_000, key_dtype=np.uint32, shards=4)
    path = tmp_path / "input.bin"
    np.arange(100_000, dtype=np.uint32).tofile(path)
    on_disk = InputDescriptor.for_file(path, FileLayout(np.uint32))
    return [array, pairs, small, budgeted, sharded, on_disk]


class TestProvenance:
    def test_uncalibrated_plans_say_so(self):
        plan = Planner(native="never").plan(
            InputDescriptor(n=4_000_000, key_dtype=np.uint32)
        )
        assert plan.cost_source == "paper-analytical"
        assert plan.profile_fingerprint is None
        assert "cost source     : paper-analytical" in plan.explain()

    def test_calibrated_plans_carry_the_fingerprint(self, profile_path):
        planner = Planner(native="never", profile=profile_path)
        plan = planner.plan(InputDescriptor(n=4_000_000, key_dtype=np.uint32))
        assert plan.cost_source == "host-profile"
        assert plan.profile_fingerprint == planner.profile.fingerprint
        assert plan.profile_fingerprint.startswith("hp-")
        assert plan.profile_fingerprint in plan.explain()

    def test_profile_none_disables_calibration(self, profile_path, monkeypatch):
        monkeypatch.setenv("REPRO_HOST_PROFILE", profile_path)
        assert Planner(profile="auto").host is not None
        assert Planner(profile=None).host is None

    def test_missing_auto_profile_matches_profile_none(self):
        # conftest points REPRO_HOST_PROFILE at a nonexistent file, so
        # the default planner and an explicitly uncalibrated one must
        # produce byte-identical plans — the pre-calibration behaviour.
        desc = InputDescriptor(n=4_000_000, key_dtype=np.uint32)
        auto = Planner(native="never").plan(desc)
        off = Planner(native="never", profile=None).plan(desc)
        assert auto.to_dict() == off.to_dict()


class TestStructureInvariance:
    def test_profile_reprices_but_never_reroutes(self, profile_path, tmp_path):
        for desc in various_descriptors(tmp_path):
            paper = Planner(native="never", profile=None).plan(desc)
            host = Planner(native="never", profile=profile_path).plan(desc)
            assert host.strategy == paper.strategy
            assert host.engine == paper.engine
            assert [s.kind for s in host.steps] == [
                s.kind for s in paper.steps
            ]
            assert [s.bytes_moved for s in host.steps] == [
                s.bytes_moved for s in paper.steps
            ]
            assert host.predicted_seconds > 0

    def test_fixed_profile_planning_is_deterministic(
        self, profile_path, tmp_path
    ):
        a = Planner(native="never", profile=profile_path)
        b = Planner(native="never", profile=profile_path)
        for desc in various_descriptors(tmp_path):
            assert a.plan(desc).to_dict() == b.plan(desc).to_dict()

    @given(
        n=st.integers(min_value=1, max_value=50_000_000),
        pairs=st.booleans(),
        workers=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_deterministic_over_descriptor_space(self, n, pairs, workers):
        profile = HostProfile.from_dict(SYNTHETIC_PROFILE)
        desc = InputDescriptor(
            n=n,
            key_dtype=np.uint32,
            value_dtype=np.uint32 if pairs else None,
            workers=workers,
        )
        first = Planner(native="never", profile=profile).plan(desc)
        second = Planner(native="never", profile=profile).plan(desc)
        assert first.to_dict() == second.to_dict()
        assert first.cost_source == "host-profile"


class TestSerialisedShape:
    """Regression-pin the JSON shape downstream consumers parse."""

    TOP_LEVEL = {
        "descriptor",
        "strategy",
        "engine",
        "reason",
        "notes",
        "steps",
        "predicted_seconds",
        "bytes_moved",
        "cost_source",
        "profile_fingerprint",
    }
    STEP_LEVEL = {"kind", "params", "predicted_seconds", "bytes_moved"}

    def test_plan_to_dict_shape(self, profile_path):
        plan = Planner(native="never", profile=profile_path).plan(
            InputDescriptor(n=4_000_000, key_dtype=np.uint32)
        )
        doc = plan.to_dict()
        assert set(doc) == self.TOP_LEVEL
        for step in doc["steps"]:
            assert set(step) == self.STEP_LEVEL
        assert doc["cost_source"] == "host-profile"
        assert isinstance(doc["profile_fingerprint"], str)

    def test_uncalibrated_to_dict_shape(self):
        doc = (
            Planner(native="never")
            .plan(InputDescriptor(n=1000, key_dtype=np.uint32))
            .to_dict()
        )
        assert set(doc) == self.TOP_LEVEL
        assert doc["cost_source"] == "paper-analytical"
        assert doc["profile_fingerprint"] is None


class TestCalibratedPricing:
    def test_local_sort_priced_by_argsort_rate(self, profile_path):
        plan = Planner(native="never", profile=profile_path).plan(
            InputDescriptor(n=1000, key_dtype=np.uint32)
        )
        assert plan.steps[0].kind == "local-sort"
        assert plan.predicted_seconds == pytest.approx(1000 / 2.0e7)

    def test_hybrid_priced_by_layout_bandwidth(self, profile_path):
        plan = Planner(native="never", profile=profile_path).plan(
            InputDescriptor(n=4_000_000, key_dtype=np.uint32)
        )
        step = plan.steps[0]
        assert step.kind == "hybrid-msd"
        assert step.predicted_seconds == pytest.approx(
            step.bytes_moved / 2.0e8
        )

    def test_workers_speed_up_the_calibrated_estimate(self, profile_path):
        planner = Planner(native="never", profile=profile_path)
        one = planner.plan(InputDescriptor(n=4_000_000, key_dtype=np.uint32))
        two = planner.plan(
            InputDescriptor(n=4_000_000, key_dtype=np.uint32, workers=2)
        )
        assert two.predicted_seconds == pytest.approx(
            one.predicted_seconds / 1.5
        )

    def test_external_plan_priced_by_spill_and_merge_rates(
        self, profile_path, tmp_path
    ):
        path = tmp_path / "input.bin"
        np.arange(100_000, dtype=np.uint32).tofile(path)
        desc = InputDescriptor.for_file(path, FileLayout(np.uint32))
        plan = Planner(profile=profile_path).plan(desc)
        total = desc.total_bytes
        assert plan.step("spill-runs").predicted_seconds == pytest.approx(
            2 * total / 1.0e8
        )
        assert plan.step("kway-merge").predicted_seconds == pytest.approx(
            2 * total / 2.0e8
        )
