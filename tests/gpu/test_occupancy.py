"""Tests for the SM occupancy model, including §2.2's worked example."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, ResourceExhaustedError
from repro.gpu.occupancy import BlockResources, occupancy
from repro.gpu.spec import GPUSpec, TITAN_X_PASCAL


def _spec_96kb() -> GPUSpec:
    """The §2.2 example SM: 96 KB shared memory, 65 536 registers."""
    return GPUSpec(
        name="example",
        sm_count=1,
        cores_per_sm=128,
        clock_hz=1e9,
        device_memory_bytes=1 << 30,
        peak_bandwidth=100e9,
        effective_bandwidth=90e9,
        shared_memory_per_sm=96 * 1024,
        shared_memory_per_block=48 * 1024,
        registers_per_sm=65536,
        max_threads_per_sm=2048,
    )


class TestPaperExample:
    def test_eight_blocks_of_256_threads(self):
        # §2.2: 96 KB shared / 65 536 registers hosts "up to eight thread
        # blocks of 256 threads, if each block requires eight KB of
        # shared memory and 16 registers per thread".
        block = BlockResources(
            threads=256,
            shared_memory_bytes=8 * 1024,
            registers_per_thread=16,
        )
        result = occupancy(_spec_96kb(), block)
        assert result.blocks_per_sm == 8
        assert result.resident_threads == 2048
        assert result.occupancy_fraction == pytest.approx(1.0)


class TestLimitingResources:
    def test_shared_memory_limits(self):
        block = BlockResources(
            threads=64, shared_memory_bytes=40 * 1024, registers_per_thread=16
        )
        result = occupancy(_spec_96kb(), block)
        assert result.blocks_per_sm == 2
        assert result.limiting_resource == "shared_memory"

    def test_registers_limit(self):
        block = BlockResources(
            threads=256, shared_memory_bytes=1024, registers_per_thread=128
        )
        result = occupancy(_spec_96kb(), block)
        assert result.limiting_resource == "registers"
        assert result.blocks_per_sm == 2

    def test_threads_limit(self):
        block = BlockResources(
            threads=1024, shared_memory_bytes=0, registers_per_thread=16
        )
        result = occupancy(_spec_96kb(), block)
        assert result.limiting_resource == "threads"
        assert result.blocks_per_sm == 2


class TestRejections:
    def test_oversized_block_shared_memory(self):
        block = BlockResources(
            threads=64,
            shared_memory_bytes=49 * 1024,
            registers_per_thread=16,
        )
        with pytest.raises(ResourceExhaustedError):
            occupancy(_spec_96kb(), block)

    def test_too_many_threads_per_block(self):
        block = BlockResources(
            threads=2048, shared_memory_bytes=0, registers_per_thread=16
        )
        with pytest.raises(ResourceExhaustedError):
            occupancy(_spec_96kb(), block)

    def test_register_overflow(self):
        block = BlockResources(
            threads=1024, shared_memory_bytes=0, registers_per_thread=255
        )
        with pytest.raises(ResourceExhaustedError):
            occupancy(_spec_96kb(), block)

    def test_invalid_block(self):
        with pytest.raises(ConfigurationError):
            BlockResources(
                threads=0, shared_memory_bytes=0, registers_per_thread=16
            )


class TestTitanXScatterKernels:
    def test_table3_scatter_blocks_fit(self):
        from repro.core.config import TABLE3_PRESETS

        for config in TABLE3_PRESETS.values():
            result = occupancy(
                TITAN_X_PASCAL, config.scatter_block_resources()
            )
            # §6: parameters chosen "in order to improve the occupancy" —
            # at least two scatter blocks stay resident per SM.
            assert result.blocks_per_sm >= 2
