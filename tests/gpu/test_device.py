"""Tests for the simulated device facade and the PCIe link."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, DeviceStateError, ResourceExhaustedError
from repro.gpu.device import SimulatedGPU, Timeline
from repro.gpu.kernel import KernelLaunch, LaunchConfig
from repro.gpu.pcie import PCIeLink
from repro.gpu.spec import TITAN_X_PASCAL


class TestTimeline:
    def test_accumulates(self):
        t = Timeline()
        t.add("pass0/histogram", 1.0)
        t.add("pass0/histogram", 0.5)
        assert t.get("pass0/histogram") == pytest.approx(1.5)

    def test_total_and_prefix(self):
        t = Timeline()
        t.add("pass0/histogram", 1.0)
        t.add("pass0/scatter", 2.0)
        t.add("pass1/histogram", 3.0)
        assert t.total() == pytest.approx(6.0)
        assert t.by_prefix("pass0/") == pytest.approx(3.0)

    def test_negative_rejected(self):
        t = Timeline()
        with pytest.raises(DeviceStateError):
            t.add("x", -1.0)

    def test_phase_order_preserved(self):
        t = Timeline()
        t.add("b", 1.0)
        t.add("a", 1.0)
        assert [name for name, _ in t.phases()] == ["b", "a"]


class TestAllocations:
    def test_allocate_and_free(self):
        gpu = SimulatedGPU()
        gpu.allocate("input", 1 << 30)
        assert gpu.allocated_bytes == 1 << 30
        gpu.free("input")
        assert gpu.allocated_bytes == 0

    def test_overcommit_rejected(self):
        gpu = SimulatedGPU()
        with pytest.raises(ResourceExhaustedError):
            gpu.allocate("huge", TITAN_X_PASCAL.device_memory_bytes + 1)

    def test_duplicate_tag_rejected(self):
        gpu = SimulatedGPU()
        gpu.allocate("a", 100)
        with pytest.raises(DeviceStateError):
            gpu.allocate("a", 100)

    def test_double_free_rejected(self):
        gpu = SimulatedGPU()
        gpu.allocate("a", 100)
        gpu.free("a")
        with pytest.raises(DeviceStateError):
            gpu.free("a")

    def test_three_chunk_layout_fits_4gb_chunks(self):
        # §5: "larger chunks that may take up almost one third of the
        # available device memory".
        gpu = SimulatedGPU()
        chunk = TITAN_X_PASCAL.device_memory_bytes // 3
        for tag in ("sorting", "auxiliary", "staging"):
            gpu.allocate(tag, chunk)
        assert gpu.free_bytes < chunk


class TestLaunchAccounting:
    def test_counters_accumulate(self):
        gpu = SimulatedGPU()
        gpu.record_launch(
            KernelLaunch(
                name="histogram",
                config=LaunchConfig(10, 384),
                bytes_read=100.0,
                bytes_written=50.0,
                pass_index=0,
            )
        )
        assert gpu.counters.kernel_launches == 1
        assert gpu.counters.bytes_total == pytest.approx(150.0)
        assert gpu.counters.launches_by_name["histogram"] == 1

    def test_launches_in_pass(self):
        gpu = SimulatedGPU()
        for p in (0, 0, 1):
            gpu.record_launch(
                KernelLaunch(
                    name="k", config=LaunchConfig(1, 32), pass_index=p
                )
            )
        assert len(gpu.launches_in_pass(0)) == 2
        assert len(gpu.launches_in_pass(1)) == 1

    def test_reset_keeps_allocations(self):
        gpu = SimulatedGPU()
        gpu.allocate("a", 64)
        gpu.record_launch(
            KernelLaunch(name="k", config=LaunchConfig(1, 32))
        )
        gpu.reset()
        assert gpu.counters.kernel_launches == 0
        assert gpu.allocated_bytes == 64


class TestLaunchConfig:
    def test_total_threads(self):
        assert LaunchConfig(4, 256).total_threads == 1024

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            LaunchConfig(-1, 32)
        with pytest.raises(ConfigurationError):
            LaunchConfig(1, 0)


class TestPCIeLink:
    def test_fig8_anchor(self):
        # 6 GB in ~540 ms.
        link = PCIeLink.for_spec(TITAN_X_PASCAL)
        assert link.transfer_time(6e9) == pytest.approx(0.540, rel=0.001)

    def test_full_duplex(self):
        link = PCIeLink(bandwidth=10e9)
        # Concurrent transfers cost the max, not the sum.
        assert link.duplex_time(10e9, 10e9) == pytest.approx(
            link.transfer_time(10e9)
        )

    def test_zero_bytes_free(self):
        link = PCIeLink(bandwidth=10e9)
        assert link.transfer_time(0) == 0.0

    def test_latency_added(self):
        link = PCIeLink(bandwidth=10e9, latency=1e-3)
        assert link.transfer_time(10e9) == pytest.approx(1.001)

    def test_invalid_bandwidth(self):
        with pytest.raises(ConfigurationError):
            PCIeLink(bandwidth=0.0)

    def test_negative_bytes(self):
        link = PCIeLink(bandwidth=10e9)
        with pytest.raises(ConfigurationError):
            link.transfer_time(-1.0)
