"""Tests for the memory-transaction model, anchored to §4.4's arithmetic."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.gpu.memory import MemoryTransactionModel, TransferDirection
from repro.gpu.spec import TITAN_X_PASCAL


@pytest.fixture
def model() -> MemoryTransactionModel:
    return MemoryTransactionModel(TITAN_X_PASCAL)


class TestTransactionCounts:
    def test_exact_multiple(self, model):
        assert model.transactions_for(64) == 2

    def test_rounds_up(self, model):
        assert model.transactions_for(33) == 2

    def test_zero(self, model):
        assert model.transactions_for(0) == 0

    def test_negative_rejected(self, model):
        with pytest.raises(ConfigurationError):
            model.transactions_for(-1)


class TestScatterEfficiency:
    """§4.4: the digit-width trade-off that selects d = 8."""

    def test_paper_worst_case_8_bits(self, model):
        # "yields 80% for using eight-bit digits with a radix of 256"
        # for a 32 768-byte block with T = 32.
        eff = model.worst_case_scatter_efficiency(32768, 8)
        assert eff == pytest.approx(0.80, abs=0.005)

    def test_paper_worst_case_9_bits(self, model):
        eff = model.worst_case_scatter_efficiency(32768, 9)
        assert eff == pytest.approx(2 / 3, abs=0.005)

    def test_paper_worst_case_10_bits(self, model):
        eff = model.worst_case_scatter_efficiency(32768, 10)
        assert eff == pytest.approx(0.50, abs=0.005)

    def test_paper_worst_case_11_bits(self, model):
        eff = model.worst_case_scatter_efficiency(32768, 11)
        assert eff == pytest.approx(1 / 3, abs=0.005)

    def test_lower_bound_1024_transactions(self, model):
        # §4.4: a 32 768-byte block requires "a minimum of 1 024
        # transactions for T = 32 bytes".
        est = model.scatter_estimate(32768, 256)
        assert est.lower == 1024

    def test_expected_between_bounds(self, model):
        est = model.scatter_estimate(32768, 256)
        assert est.lower <= est.expected <= est.upper

    def test_known_nonempty_tightens_expected(self, model):
        dense = model.scatter_estimate(32768, 256, non_empty_buckets=256)
        sparse = model.scatter_estimate(32768, 256, non_empty_buckets=1)
        assert sparse.expected < dense.expected

    def test_invalid_radix(self, model):
        with pytest.raises(ConfigurationError):
            model.scatter_estimate(1024, 0)


class TestTimeForBytes:
    def test_bandwidth_division(self, model):
        t = model.time_for_bytes(TITAN_X_PASCAL.effective_bandwidth)
        assert t == pytest.approx(1.0)

    def test_efficiency_scales_time(self, model):
        base = model.time_for_bytes(1e9)
        half = model.time_for_bytes(1e9, efficiency=0.5)
        assert half == pytest.approx(2 * base)

    def test_invalid_efficiency(self, model):
        with pytest.raises(ConfigurationError):
            model.time_for_bytes(1.0, efficiency=0.0)
        with pytest.raises(ConfigurationError):
            model.time_for_bytes(1.0, efficiency=1.5)


class TestTransferDirection:
    def test_enum_values(self):
        assert TransferDirection.READ.value == "read"
        assert TransferDirection.WRITE.value == "write"
