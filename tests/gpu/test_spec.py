"""Tests for the GPU hardware specifications."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.gpu.spec import GPUSpec, GTX_980, TESLA_P100, TITAN_X_PASCAL


class TestTitanXPascal:
    """The paper's §6 evaluation platform."""

    def test_core_count(self):
        # §6: "3 584 cores"
        assert TITAN_X_PASCAL.total_cores == 3584

    def test_base_clock(self):
        # §6: "a base clock of 1 417 MHz"
        assert TITAN_X_PASCAL.clock_hz == pytest.approx(1.417e9)

    def test_device_memory(self):
        # §6: "12 GB device memory"
        assert TITAN_X_PASCAL.device_memory_bytes == 12 * 1024**3

    def test_effective_bandwidth_matches_microbenchmark(self):
        # Figure 2 caption: "peak throughput of 369.17 GB/s"
        assert TITAN_X_PASCAL.effective_bandwidth == pytest.approx(369.17e9)

    def test_required_histogram_throughput_32bit(self):
        # §4.3: "3-4.5 billion 32-bit keys per SM per second"
        rate = TITAN_X_PASCAL.required_histogram_throughput(4)
        assert 3.0e9 <= rate <= 4.5e9

    def test_required_histogram_throughput_64bit_is_half(self):
        rate32 = TITAN_X_PASCAL.required_histogram_throughput(4)
        rate64 = TITAN_X_PASCAL.required_histogram_throughput(8)
        assert rate64 == pytest.approx(rate32 / 2)

    def test_pcie_bandwidth_matches_figure8(self):
        # Figure 8: 6 GB host-to-device in 540 ms.
        seconds = 6e9 / TITAN_X_PASCAL.pcie_bandwidth
        assert seconds == pytest.approx(0.540, rel=1e-6)


class TestOtherSpecs:
    def test_p100_bandwidth_exceeds_titan(self):
        # §2.2: "device memory that provides transfer rates of up to
        # 750 GB/s" (P100 whitepaper).
        assert TESLA_P100.peak_bandwidth > TITAN_X_PASCAL.peak_bandwidth

    def test_gtx980_is_maxwell_scale(self):
        assert GTX_980.sm_count == 16
        assert GTX_980.total_cores == 2048


class TestValidation:
    def test_effective_cannot_exceed_peak(self):
        with pytest.raises(ConfigurationError):
            GPUSpec(
                name="bad",
                sm_count=1,
                cores_per_sm=64,
                clock_hz=1e9,
                device_memory_bytes=1 << 30,
                peak_bandwidth=100e9,
                effective_bandwidth=200e9,
                shared_memory_per_sm=64 << 10,
                shared_memory_per_block=48 << 10,
                registers_per_sm=65536,
            )

    def test_block_shared_memory_within_sm(self):
        with pytest.raises(ConfigurationError):
            GPUSpec(
                name="bad",
                sm_count=1,
                cores_per_sm=64,
                clock_hz=1e9,
                device_memory_bytes=1 << 30,
                peak_bandwidth=100e9,
                effective_bandwidth=90e9,
                shared_memory_per_sm=32 << 10,
                shared_memory_per_block=48 << 10,
                registers_per_sm=65536,
            )

    def test_positive_sm_count(self):
        with pytest.raises(ConfigurationError):
            GPUSpec(
                name="bad",
                sm_count=0,
                cores_per_sm=64,
                clock_hz=1e9,
                device_memory_bytes=1 << 30,
                peak_bandwidth=100e9,
                effective_bandwidth=90e9,
                shared_memory_per_sm=64 << 10,
                shared_memory_per_block=48 << 10,
                registers_per_sm=65536,
            )
