"""Tests for kernel-launch records."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.gpu.kernel import KernelLaunch, LaunchConfig


class TestKernelLaunch:
    def test_bytes_total(self):
        launch = KernelLaunch(
            name="scatter",
            config=LaunchConfig(8, 384),
            bytes_read=100.0,
            bytes_written=50.0,
        )
        assert launch.bytes_total == pytest.approx(150.0)

    def test_defaults(self):
        launch = KernelLaunch(name="k", config=LaunchConfig(1, 32))
        assert launch.bytes_total == 0.0
        assert launch.pass_index == -1
        assert launch.metadata == {}

    def test_metadata_carried(self):
        launch = KernelLaunch(
            name="k", config=LaunchConfig(1, 32), metadata={"digit": 3}
        )
        assert launch.metadata["digit"] == 3

    def test_zero_grid_allowed(self):
        # Empty launches are representable (a pass with no work).
        assert LaunchConfig(0, 32).total_threads == 0

    def test_invalid_threads(self):
        with pytest.raises(ConfigurationError):
            LaunchConfig(1, -5)
