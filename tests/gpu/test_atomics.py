"""Tests for the shared-memory atomic throughput model (§4.3)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.gpu.atomics import AtomicThroughputModel
from repro.gpu.spec import TITAN_X_PASCAL


@pytest.fixture
def model() -> AtomicThroughputModel:
    return AtomicThroughputModel(TITAN_X_PASCAL)


class TestSerialization:
    def test_full_conflict_hits_paper_rate(self, model):
        # §4.3: "an average throughput of only 1.7 billion 32-bit keys
        # per SM per second" for a constant distribution.
        rate = model.update_rate(warp_conflict=32.0)
        assert rate == pytest.approx(1.7e9, rel=0.01)

    def test_no_conflict_is_saturated(self, model):
        # §4.3: "as much as 3.3 billion updates per SM per second".
        rate = model.update_rate(warp_conflict=1.0)
        assert rate == pytest.approx(model.saturated_rate)
        assert rate >= 3.3e9

    def test_conflict_below_one_rejected(self, model):
        with pytest.raises(ConfigurationError):
            model.update_rate(0.5)

    def test_monotone_in_conflict(self, model):
        rates = [model.update_rate(c) for c in (1, 2, 4, 8, 16, 32)]
        assert rates == sorted(rates, reverse=True)


class TestUniformConflict:
    def test_q1_is_full_warp(self, model):
        assert model.uniform_conflict(1) == pytest.approx(32.0)

    def test_large_q_low_conflict(self, model):
        assert model.uniform_conflict(256) < 3.0

    def test_invalid_q(self, model):
        with pytest.raises(ConfigurationError):
            model.uniform_conflict(0)


class TestKeyRate:
    def test_ops_per_key_scales_rate(self, model):
        # Thread reduction: one op per 9-key run of equal values.
        combined = model.key_rate(32.0, ops_per_key=1 / 9)
        single = model.key_rate(32.0, ops_per_key=1.0)
        assert combined == pytest.approx(9 * single)

    def test_invalid_ops(self, model):
        with pytest.raises(ConfigurationError):
            model.key_rate(1.0, ops_per_key=0.0)


class TestBandwidthUtilisation:
    """The shape of Figure 2."""

    def test_constant_distribution_is_half(self, model):
        # atomics only at q=1: ~1.7 / ~3.3 required ≈ 52 %.
        util = model.bandwidth_utilisation(
            model.uniform_conflict(1), key_bytes=4
        )
        assert 0.40 <= util <= 0.60

    def test_q3_saturates(self, model):
        # §4.3: "for a uniform distribution over q distinct digit
        # values, with q >= 3 ... almost achieving peak memory bandwidth".
        util = model.bandwidth_utilisation(
            model.uniform_conflict(3), key_bytes=4
        )
        assert util >= 0.90

    def test_monotone_in_q(self, model):
        utils = [
            model.bandwidth_utilisation(model.uniform_conflict(q), 4)
            for q in (1, 2, 3, 4, 8, 64, 256)
        ]
        assert utils == sorted(utils)

    def test_never_exceeds_one(self, model):
        for q in (1, 2, 3, 16, 256):
            assert (
                model.bandwidth_utilisation(model.uniform_conflict(q), 4)
                <= 1.0
            )

    def test_64bit_keys_tolerate_full_serialization(self, model):
        # §4.3's requirement 8*BW/(k*|SMs|) halves for 64-bit keys —
        # the reason Figures 12/14 show no thread-reduction effect.
        util = model.bandwidth_utilisation(
            model.uniform_conflict(1), key_bytes=8
        )
        assert util >= 0.95

    def test_compute_cap_applies(self, model):
        capped = model.bandwidth_utilisation(
            1.0, 4, compute_rate=1.0e9
        )
        uncapped = model.bandwidth_utilisation(1.0, 4)
        assert capped < uncapped
