"""Deadlines and retry policies: exact schedules, strict budgets."""

from __future__ import annotations

import time

import pytest

from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    TransientError,
)
from repro.resilience.policy import (
    DEFAULT_RETRY_POLICY,
    Deadline,
    RetryPolicy,
)


class TestDeadline:
    def test_after_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            Deadline.after(-1.0)

    def test_zero_budget_is_already_expired(self):
        deadline = Deadline.after(0.0)
        assert deadline.expired
        assert deadline.remaining == 0.0
        with pytest.raises(DeadlineExceededError, match="before planning"):
            deadline.check("planning")

    def test_remaining_counts_down_never_negative(self):
        deadline = Deadline.after(60.0)
        assert 59.0 < deadline.remaining <= 60.0
        assert not deadline.expired
        expired = Deadline(time.monotonic() - 5.0)
        assert expired.remaining == 0.0
        assert expired.expired


class TestRetryPolicyConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_delay=-0.1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(multiplier=0.5)

    def test_delays_are_deterministic_and_bounded(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay=0.1, multiplier=2.0,
            max_delay=0.3, jitter=0.5, seed=42,
        )
        first, second = policy.delays(), policy.delays()
        assert first == second  # seeded jitter replays bit-for-bit
        assert len(first) == 4
        raws = [0.1, 0.2, 0.3, 0.3]  # capped by max_delay
        for delay, raw in zip(first, raws):
            assert raw * 0.5 <= delay <= raw

    def test_zero_jitter_is_pure_exponential(self):
        policy = RetryPolicy(
            max_attempts=4, base_delay=0.05, multiplier=3.0,
            max_delay=10.0, jitter=0.0,
        )
        assert policy.delays() == pytest.approx([0.05, 0.15, 0.45])

    def test_retryability_doctrine(self):
        policy = DEFAULT_RETRY_POLICY
        assert policy.is_retryable(TransientError("x"))
        assert policy.is_retryable(OSError("disk hiccup"))
        assert not policy.is_retryable(ValueError("caller bug"))
        # Never retried, even under a catch-all retry_on: retrying
        # cannot manufacture time.
        broad = RetryPolicy(retry_on=(Exception,))
        assert not broad.is_retryable(DeadlineExceededError("late"))


class TestRetryPolicyCall:
    def test_success_needs_no_sleep(self):
        slept = []
        result = RetryPolicy(max_attempts=3).call(
            lambda: "ok", sleep=slept.append
        )
        assert result == "ok"
        assert slept == []

    def test_retries_follow_the_declared_schedule(self):
        policy = RetryPolicy(max_attempts=3, jitter=0.0, base_delay=0.01)
        attempts = []
        slept = []
        hooks = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise TransientError("blip")
            return "third time lucky"

        result = policy.call(
            flaky,
            sleep=slept.append,
            on_retry=lambda attempt, exc: hooks.append(
                (attempt, type(exc).__name__)
            ),
        )
        assert result == "third time lucky"
        assert slept == pytest.approx(policy.delays())
        assert hooks == [(1, "TransientError"), (2, "TransientError")]

    def test_non_retryable_raises_immediately(self):
        attempts = []

        def bug():
            attempts.append(1)
            raise ValueError("deterministic caller bug")

        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=5).call(bug, sleep=lambda _: None)
        assert len(attempts) == 1

    def test_exhausted_attempts_reraise_last_failure(self):
        def always():
            raise TransientError("still down")

        with pytest.raises(TransientError, match="still down"):
            RetryPolicy(max_attempts=3).call(always, sleep=lambda _: None)

    def test_expired_deadline_wins_over_remaining_retries(self):
        deadline = Deadline.after(0.0)

        def flaky():
            raise TransientError("blip")

        with pytest.raises(DeadlineExceededError):
            RetryPolicy(max_attempts=5).call(
                flaky, deadline=deadline, sleep=lambda _: None
            )

    def test_deadline_expiry_chains_the_real_failure(self):
        deadline = Deadline.after(0.02)

        def flaky():
            raise TransientError("the actual problem")

        with pytest.raises(DeadlineExceededError) as info:
            RetryPolicy(
                max_attempts=10, base_delay=0.05, jitter=0.0
            ).call(flaky, deadline=deadline)
        assert isinstance(info.value.__cause__, TransientError)

    def test_backoff_never_sleeps_past_the_deadline(self):
        deadline = Deadline.after(0.05)
        slept = []

        def flaky():
            raise TransientError("blip")

        with pytest.raises((TransientError, DeadlineExceededError)):
            RetryPolicy(
                max_attempts=3, base_delay=10.0, jitter=0.0
            ).call(flaky, deadline=deadline, sleep=slept.append)
        assert all(s <= 0.05 for s in slept)
