"""The containment contract, as a property over the fault matrix.

For *any* single-fault schedule drawn from the declared (site, kind)
matrix, a sort must end in byte-identical output — possibly after
retries, degradation, or resume — or a typed error.  Never silently
corrupted bytes, never an unexercised fault, never a hang (the suite's
``SIGALRM`` guard turns a hang into a failure).

The scenarios themselves are the same deterministic ones the
``repro chaos`` CLI sweeps; hypothesis supplies the schedule and the
data seed, shrinking any violation to a minimal (site, kind, seed).
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.resilience.chaos import (
    WRITE_SITES,
    _external_scenario,
    _native_scenario,
    _service_scenario,
    _shard_scenario,
    default_schedule,
)
from repro.resilience.faults import SITES


def _is_shard(site: str) -> bool:
    return site.startswith("shard.") or site == "engine.sharded"


FULL_MATRIX = default_schedule()
EXTERNAL_MATRIX = [
    pair for pair in FULL_MATRIX if pair[0].startswith("external.")
]
SHARD_MATRIX = [pair for pair in FULL_MATRIX if _is_shard(pair[0])]
# engine.native needs a forced-native plan to be reachable at all;
# its scenario runner supplies one (and works without the extension).
NATIVE_MATRIX = [pair for pair in FULL_MATRIX if pair[0] == "engine.native"]
SERVICE_MATRIX = [
    pair
    for pair in FULL_MATRIX
    if not pair[0].startswith("external.")
    and not _is_shard(pair[0])
    and pair[0] != "engine.native"
]

# Each draw runs a complete (small) sort through real engines and real
# spill files; generous per-example deadline, modest example counts.
SCENARIO_SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestScheduleShape:
    def test_every_site_appears(self):
        assert {site for site, _ in FULL_MATRIX} == set(SITES)

    def test_partial_only_at_write_sites(self):
        partial_sites = {
            site for site, kind in FULL_MATRIX if kind == "partial"
        }
        assert partial_sites == set(WRITE_SITES)

    def test_hang_only_where_the_watchdog_guards(self):
        hang_sites = {
            site for site, kind in FULL_MATRIX if kind == "hang"
        }
        assert hang_sites == {"service.execute"}

    def test_site_filter(self):
        only = default_schedule(["engine.hybrid"])
        assert only == [("engine.hybrid", "error")]


def assert_contained(result: dict) -> None:
    assert result["ok"], (
        f"containment violated at {result['site']}/{result['kind']}: "
        f"{result['outcome']} — {result['detail']}"
    )
    assert result["outcome"] not in ("corrupt-output", "not-reached")


class TestSingleFaultContainment:
    @settings(max_examples=12, **SCENARIO_SETTINGS)
    @given(
        scenario=st.sampled_from(EXTERNAL_MATRIX),
        seed=st.integers(0, 2**16),
    )
    def test_external_faults_recover_or_fail_typed(self, scenario, seed):
        site, kind = scenario
        assert_contained(_external_scenario(site, kind, n=3_000, seed=seed))

    @settings(max_examples=8, **SCENARIO_SETTINGS)
    @given(
        scenario=st.sampled_from(
            [p for p in SERVICE_MATRIX if p[1] != "hang"]
        ),
        seed=st.integers(0, 2**16),
    )
    def test_service_faults_absorbed_or_fail_typed(self, scenario, seed):
        site, kind = scenario
        assert_contained(_service_scenario(site, kind, n=3_000, seed=seed))

    @settings(max_examples=6, **SCENARIO_SETTINGS)
    @given(
        scenario=st.sampled_from(SHARD_MATRIX),
        seed=st.integers(0, 2**16),
    )
    def test_shard_faults_absorbed_or_fail_typed(self, scenario, seed):
        site, kind = scenario
        assert_contained(_shard_scenario(site, kind, n=3_000, seed=seed))

    @settings(max_examples=6, **SCENARIO_SETTINGS)
    @given(
        scenario=st.sampled_from(NATIVE_MATRIX),
        seed=st.integers(0, 2**16),
    )
    def test_native_faults_absorbed_or_fail_typed(self, scenario, seed):
        site, kind = scenario
        assert_contained(_native_scenario(site, kind, n=3_000, seed=seed))

    def test_watchdog_cuts_the_hang_short(self):
        # The hang scenario is deterministic and slow-ish (it waits for
        # the watchdog), so it runs once rather than under hypothesis.
        result = _service_scenario("service.execute", "hang", n=2_000, seed=0)
        assert_contained(result)
        assert result["outcome"] == "typed-error"
        assert "DeadlineExceededError" in result["detail"]
