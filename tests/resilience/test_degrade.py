"""The degradation ladder: retry the rung, then climb down, never lie."""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    EngineFailedError,
    TransientError,
    UnsupportedDtypeError,
)
from repro.plan import ExecutorRegistry
from repro.resilience.degrade import (
    DEFAULT_LADDER,
    fallback_chain,
    resilient_execute,
)
from repro.resilience.faults import FaultPlan, inject
from repro.resilience.policy import Deadline, RetryPolicy

FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)


def plan_for(strategy: str):
    return SimpleNamespace(strategy=strategy)


def ok_result(tag: str):
    return SimpleNamespace(meta={}, tag=tag)


def registry_with(**engines) -> ExecutorRegistry:
    registry = ExecutorRegistry()
    for name, fn in engines.items():
        registry.register(name, fn)
    return registry


class TestFallbackChain:
    def test_planned_strategy_runs_first_then_ladder(self):
        assert fallback_chain("hybrid") == ("hybrid", "fallback", "oracle")
        assert fallback_chain("hetero") == (
            "hetero", "hybrid", "fallback", "oracle"
        )

    def test_native_walks_down_but_is_never_escalated_to(self):
        # A native plan degrades through every NumPy rung; a hybrid
        # plan must never walk *up* into the compiled tier.
        assert fallback_chain("native") == (
            "native", "hybrid", "fallback", "oracle"
        )
        assert "native" not in fallback_chain("hybrid")

    def test_external_never_changes_engine(self):
        assert fallback_chain("external") == ("external",)

    def test_custom_ladder(self):
        assert fallback_chain("hybrid", ladder=("oracle",)) == (
            "hybrid", "oracle"
        )


class TestResilientExecute:
    def test_clean_success_leaves_no_resilience_meta(self):
        registry = registry_with(hybrid=lambda plan, **io: ok_result("hy"))
        result = resilient_execute(
            plan_for("hybrid"), registry=registry,
            retry_policy=FAST_RETRY,
        )
        assert result.tag == "hy"
        assert "resilience" not in result.meta

    def test_retry_within_rung_is_recorded(self):
        calls = []

        def flaky(plan, **io):
            calls.append(1)
            if len(calls) == 1:
                raise TransientError("blip")
            return ok_result("hy")

        report: dict = {}
        result = resilient_execute(
            plan_for("hybrid"),
            registry=registry_with(hybrid=flaky),
            retry_policy=FAST_RETRY,
            report=report,
        )
        assert result.tag == "hy"
        assert report["retries"] == 1
        assert result.meta["resilience"] == {
            "requested": "hybrid",
            "executed": "hybrid",
            "retries": 1,
            "downgrades": [],
        }

    def test_persistent_failure_degrades_down_the_ladder(self):
        def broken(plan, **io):
            raise TransientError("hybrid is down")

        report: dict = {}
        result = resilient_execute(
            plan_for("hybrid"),
            registry=registry_with(
                hybrid=broken,
                fallback=lambda plan, **io: ok_result("fb"),
            ),
            report=report,
        )
        assert result.tag == "fb"
        resilience = result.meta["resilience"]
        assert resilience["requested"] == "hybrid"
        assert resilience["executed"] == "fallback"
        assert [d["engine"] for d in resilience["downgrades"]] == ["hybrid"]
        assert report["downgrades"] == resilience["downgrades"]

    def test_whole_ladder_failing_raises_engine_failed(self):
        def broken(plan, **io):
            raise TransientError("down")

        with pytest.raises(EngineFailedError, match="every engine rung") as e:
            resilient_execute(
                plan_for("hybrid"),
                registry=registry_with(
                    hybrid=broken, fallback=broken, oracle=broken
                ),
            )
        assert isinstance(e.value.__cause__, TransientError)

    @pytest.mark.parametrize(
        "exc", [
            ConfigurationError("bad request"),
            UnsupportedDtypeError("complex128"),
            DeadlineExceededError("late"),
        ],
    )
    def test_non_degradable_errors_reraise_immediately(self, exc):
        fallback_ran = []

        def broken(plan, **io):
            raise exc

        def fb(plan, **io):
            fallback_ran.append(1)
            return ok_result("fb")

        with pytest.raises(type(exc)):
            resilient_execute(
                plan_for("hybrid"),
                registry=registry_with(hybrid=broken, fallback=fb),
            )
        assert not fallback_ran  # degrading cannot fix a caller bug

    def test_external_one_rung_reraises_original_error(self):
        def broken(plan, **io):
            raise TransientError("spill failed")

        with pytest.raises(TransientError, match="spill failed"):
            resilient_execute(
                plan_for("external"),
                registry=registry_with(external=broken),
            )

    def test_missing_planned_engine_is_configuration_error(self):
        with pytest.raises(ConfigurationError, match="no executor"):
            resilient_execute(
                plan_for("hybrid"), registry=registry_with()
            )

    def test_missing_optional_rung_is_skipped(self):
        def broken(plan, **io):
            raise TransientError("down")

        # fallback is unregistered; the ladder should step over it.
        result = resilient_execute(
            plan_for("hybrid"),
            registry=registry_with(
                hybrid=broken, oracle=lambda plan, **io: ok_result("or")
            ),
        )
        assert result.tag == "or"
        assert result.meta["resilience"]["executed"] == "oracle"

    def test_expired_deadline_stops_the_ladder(self):
        with pytest.raises(DeadlineExceededError):
            resilient_execute(
                plan_for("hybrid"),
                registry=registry_with(
                    hybrid=lambda plan, **io: ok_result("hy")
                ),
                deadline=Deadline.after(0.0),
            )

    def test_fault_sites_cover_every_ladder_rung(self):
        # The chaos suite relies on engine.<rung> firing inside
        # resilient_execute for every rung it can reach.
        registry = registry_with(
            hybrid=lambda plan, **io: ok_result("hy"),
            fallback=lambda plan, **io: ok_result("fb"),
            oracle=lambda plan, **io: ok_result("or"),
        )
        with inject(
            FaultPlan.single("engine.hybrid", times=-1)
        ):
            result = resilient_execute(
                plan_for("hybrid"), registry=registry
            )
        assert result.tag == "fb"
        assert result.meta["resilience"]["executed"] == "fallback"

    def test_default_ladder_matches_registered_oracle(self):
        # The real registry must know every default rung, or the
        # ladder would silently shrink.
        from repro.plan import DEFAULT_REGISTRY

        for rung in DEFAULT_LADDER:
            assert DEFAULT_REGISTRY.executor_for(rung) is not None
