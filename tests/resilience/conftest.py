"""Shared guards for the resilience suite.

Two autouse fixtures keep fault-injection tests honest:

* ``clean_faults`` guarantees no test leaves a process-global
  :class:`~repro.resilience.faults.FaultPlan` installed (a leaked plan
  would make unrelated tests fail mysteriously);
* ``hang_guard`` arms a ``SIGALRM`` watchdog around every test, so a
  containment bug that produces a real hang fails the test instead of
  wedging the whole suite.  (``pytest-timeout`` is not a dependency;
  the alarm is the zero-dependency equivalent on POSIX.)
"""

from __future__ import annotations

import signal

import pytest

from repro.resilience import faults

TEST_TIMEOUT_SECONDS = 120


@pytest.fixture(autouse=True)
def clean_faults():
    faults.uninstall()
    yield
    faults.uninstall()


@pytest.fixture(autouse=True)
def hang_guard():
    if not hasattr(signal, "SIGALRM"):  # pragma: no cover - non-POSIX
        yield
        return

    def on_alarm(signum, frame):  # pragma: no cover - only fires on hang
        raise TimeoutError(
            f"test exceeded {TEST_TIMEOUT_SECONDS}s hang guard"
        )

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.alarm(TEST_TIMEOUT_SECONDS)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)
