"""The fault-injection switchboard itself: deterministic, scoped, loud."""

from __future__ import annotations

import errno
import io
import threading
import time

import pytest

from repro.errors import ConfigurationError, TransientError
from repro.resilience import faults
from repro.resilience.faults import (
    FAULT_KINDS,
    SITES,
    FaultPlan,
    FaultSpec,
    faulted_write,
    inject,
    trip,
)


class TestFaultSpec:
    def test_unknown_site_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault site"):
            FaultSpec(site="external.nope")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault kind"):
            FaultSpec(site="engine.hybrid", kind="explode")

    def test_negative_after_and_delay_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(site="engine.hybrid", after=-1)
        with pytest.raises(ConfigurationError):
            FaultSpec(site="engine.hybrid", delay=-0.1)

    def test_build_error_taxonomy(self):
        assert isinstance(
            FaultSpec(site="engine.hybrid").build_error(), TransientError
        )
        enospc = FaultSpec(
            site="external.run_write", kind="enospc"
        ).build_error()
        assert isinstance(enospc, OSError)
        assert enospc.errno == errno.ENOSPC
        partial = FaultSpec(
            site="external.run_write", kind="partial"
        ).build_error()
        assert partial.errno == errno.EIO

    def test_exc_factory_wins(self):
        spec = FaultSpec(
            site="engine.hybrid", exc_factory=lambda: KeyError("custom")
        )
        assert isinstance(spec.build_error(), KeyError)

    def test_every_declared_kind_is_constructible(self):
        for kind in FAULT_KINDS:
            FaultSpec(site="service.execute", kind=kind)


class TestTrip:
    def test_no_plan_is_free_and_silent(self):
        assert faults.active_plan() is None
        assert trip("engine.hybrid") is None

    def test_error_fires_on_scheduled_hit_only(self):
        with inject(FaultPlan.single("engine.hybrid", after=2)) as plan:
            trip("engine.hybrid")
            trip("engine.hybrid")
            with pytest.raises(TransientError, match="injected error"):
                trip("engine.hybrid")
            # times=1 default: burned out, later hits pass again.
            trip("engine.hybrid")
        assert plan.hits("engine.hybrid") == 4
        assert plan.fired == [("engine.hybrid", "error", 2)]

    def test_times_minus_one_fires_forever(self):
        with inject(
            FaultPlan.single("engine.hybrid", times=-1)
        ) as plan:
            for _ in range(5):
                with pytest.raises(TransientError):
                    trip("engine.hybrid")
        assert plan.fire_count("engine.hybrid") == 5

    def test_partial_at_non_write_site_is_loud(self):
        # A torn write cannot be enacted by a read site; the spec still
        # surfaces as an I/O error instead of silently doing nothing.
        with inject(FaultPlan.single("external.slice_read", "partial")):
            with pytest.raises(OSError):
                trip("external.slice_read")

    def test_slow_returns_after_delay(self):
        with inject(
            FaultPlan.single("service.execute", "slow", delay=0.05)
        ):
            start = time.monotonic()
            spec = trip("service.execute")
            assert spec is not None and spec.kind == "slow"
            assert time.monotonic() - start >= 0.05

    def test_hang_blocks_until_released(self):
        with inject(
            FaultPlan.single("service.execute", "hang", delay=30.0)
        ) as plan:
            released = threading.Event()

            def worker():
                trip("service.execute")
                released.set()

            thread = threading.Thread(target=worker, daemon=True)
            thread.start()
            assert not released.wait(0.1)  # genuinely wedged
            plan.release_hangs()
            assert released.wait(5.0)
            thread.join(timeout=5.0)


class TestPlanLifecycle:
    def test_inject_scopes_activation(self):
        with inject(FaultPlan.single("engine.hybrid")) as plan:
            assert faults.active_plan() is plan
        assert faults.active_plan() is None

    def test_inject_cleans_up_on_error(self):
        with pytest.raises(RuntimeError):
            with inject(FaultPlan.single("engine.hybrid")):
                raise RuntimeError("test body blew up")
        assert faults.active_plan() is None

    def test_inject_accepts_raw_spec_lists(self):
        with inject([FaultSpec(site="engine.hybrid")]) as plan:
            assert isinstance(plan, FaultPlan)
            with pytest.raises(TransientError):
                trip("engine.hybrid")

    def test_install_replaces_and_releases_previous(self):
        first = faults.install(
            FaultPlan.single("service.execute", "hang", delay=30.0)
        )
        blocked = threading.Thread(
            target=lambda: trip("service.execute"), daemon=True
        )
        blocked.start()
        time.sleep(0.05)
        faults.install(FaultPlan.single("engine.hybrid"))
        blocked.join(timeout=5.0)  # replaced plan released its hangs
        assert not blocked.is_alive()
        assert faults.active_plan() is not first
        faults.uninstall()
        assert faults.active_plan() is None

    def test_concurrent_trips_fire_exactly_times(self):
        # 16 threads x 8 hits against times=3: the lock must hand out
        # exactly three firings no matter how the hits interleave.
        plan = faults.install(
            FaultPlan.single("engine.hybrid", times=3)
        )
        errors = []

        def worker():
            for _ in range(8):
                try:
                    trip("engine.hybrid")
                except TransientError:
                    errors.append(1)

        threads = [
            threading.Thread(target=worker) for _ in range(16)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(errors) == 3
        assert plan.fire_count() == 3
        assert plan.hits("engine.hybrid") == 16 * 8


class TestFaultedWrite:
    def test_plain_write_without_plan(self):
        buf = io.BytesIO()
        faulted_write("external.run_write", buf, b"abcdef")
        assert buf.getvalue() == b"abcdef"

    def test_partial_writes_half_then_raises_eio(self):
        buf = io.BytesIO()
        with inject(FaultPlan.single("external.run_write", "partial")):
            with pytest.raises(OSError) as info:
                faulted_write("external.run_write", buf, b"abcdefgh")
        assert info.value.errno == errno.EIO
        assert buf.getvalue() == b"abcd"  # the torn half really landed


class TestSitesTable:
    def test_site_names_have_component_prefixes(self):
        for site in SITES:
            component, _, name = site.partition(".")
            assert component in ("external", "service", "engine", "shard")
            assert name
