#!/usr/bin/env python3
"""Calibration gate: a host profile must actually predict this host.

Run after ``repro calibrate`` and a wall-clock benchmark on the *same*
machine::

    PYTHONPATH=src python tools/check_calibration.py \
        --profile /tmp/host-profile.json \
        --report /tmp/BENCH_wallclock.json \
        --case keys32-uniform --max-ratio 5

Three checks, each of which has failed silently at least once in the
history of cost models like this one:

1. **The profile loads and round-trips.**  ``load_host_profile`` must
   return a usable profile (not the forgiving ``None`` fallback), and a
   planner built on it must brand its plans ``cost_source:
   "host-profile"`` with the profile's own fingerprint.
2. **The benchmark used it.**  The report's ``host_profile`` field and
   each checked case's plan fingerprint must match the profile — a gate
   comparing predictions a *different* calibration made proves nothing.
3. **Predictions are honest.**  For every checked case,
   ``predicted_seconds / measured seconds`` must lie within
   ``[1/max_ratio, max_ratio]``.  The default 5× is deliberately loose:
   micro-probes extrapolate across sizes and CI machines are noisy —
   the gate exists to catch order-of-magnitude nonsense (the paper
   constants were ~400× off on NumPy hosts), not to certify precision.

Exit code 0 when every check passes; non-zero prints each failure.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro.cost.hostprofile import load_host_profile
from repro.plan import InputDescriptor, Planner


def check_profile_roundtrip(path: str, failures: list[str]):
    """Check 1: the profile loads and prices plans under its own name."""
    profile = load_host_profile(path)
    if profile is None:
        failures.append(f"profile at {path} did not load (missing/corrupt)")
        return None
    if not profile.fingerprint:
        failures.append(f"profile at {path} carries no fingerprint")
        return None
    planner = Planner(profile=profile)
    plan = planner.plan(InputDescriptor(n=1 << 22, key_dtype=np.uint32))
    if plan.cost_source != "host-profile":
        failures.append(
            f"planner with an explicit profile priced a plan as "
            f"{plan.cost_source!r}, not 'host-profile'"
        )
    if plan.profile_fingerprint != profile.fingerprint:
        failures.append(
            f"plan cites fingerprint {plan.profile_fingerprint!r} but the "
            f"profile is {profile.fingerprint!r}"
        )
    return profile


def check_case(record: dict, profile, max_ratio: float,
               failures: list[str]) -> None:
    name = record["name"]
    if record.get("skipped"):
        print(f"{name:26s} SKIP ({record['skipped']})")
        return
    plan = record.get("plan") or {}
    if plan.get("profile_fingerprint") != profile.fingerprint:
        failures.append(
            f"{name}: plan priced by {plan.get('profile_fingerprint')!r}, "
            f"not the checked profile {profile.fingerprint!r}"
        )
        return
    ratio = record.get("prediction_ratio")
    if ratio is None:
        failures.append(f"{name}: no prediction_ratio in the report")
        return
    ok = 1.0 / max_ratio <= ratio <= max_ratio
    print(
        f"{name:26s} predicted/measured = {ratio:8.3f}  "
        f"({plan.get('cost_source')}) {'ok' if ok else 'FAIL'}"
    )
    if not ok:
        failures.append(
            f"{name}: prediction off by more than {max_ratio}x "
            f"(ratio {ratio:.3f})"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--profile", required=True,
                        help="host profile JSON written by `repro calibrate`")
    parser.add_argument("--report", required=True,
                        help="BENCH_wallclock.json measured with the profile")
    parser.add_argument("--case", action="append", default=None,
                        help="case name to check (repeatable; default: every "
                        "non-skipped case in the report)")
    parser.add_argument("--max-ratio", type=float, default=5.0,
                        help="allowed predicted/measured factor, either way "
                        "(default 5)")
    args = parser.parse_args(argv)

    failures: list[str] = []
    profile = check_profile_roundtrip(args.profile, failures)
    if profile is None:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1

    with open(args.report) as fh:
        report = json.load(fh)
    if report.get("host_profile") != profile.fingerprint:
        failures.append(
            f"report host_profile {report.get('host_profile')!r} does not "
            f"match the checked profile {profile.fingerprint!r} — the bench "
            f"ran without it"
        )
    by_name = {r["name"]: r for r in report.get("results", ())}
    wanted = args.case or list(by_name)
    for name in wanted:
        record = by_name.get(name)
        if record is None:
            failures.append(
                f"case {name!r} not in the report (has: {', '.join(by_name)})"
            )
            continue
        check_case(record, profile, args.max_ratio, failures)

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(f"calibration gate: {len(wanted)} case(s) within "
              f"{args.max_ratio}x of measured")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
