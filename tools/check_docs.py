#!/usr/bin/env python3
"""Documentation gate: doctests + link/anchor checking for docs/*.md.

Two checks, both run by the CI docs job and by ``tests/test_docs.py``:

1. **doctest** — every ``>>>`` example in ``docs/*.md`` executes
   against the library (``PYTHONPATH=src``), so documented snippets
   cannot drift from the real API.
2. **links** — every relative markdown link in ``docs/*.md`` and
   ``README.md`` must point at an existing file (and, for ``#anchor``
   fragments, at a real heading in the target document).  This is what
   keeps the paper-map table from rotting silently when a module or
   test file moves.

Usage::

    PYTHONPATH=src python tools/check_docs.py

Exit code 0 when everything passes; a non-zero exit prints every
failure found.
"""

from __future__ import annotations

import doctest
import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parents[1]

#: Markdown inline links: [text](target).  Images and reference-style
#: links are not used in this repository's docs.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def doc_files() -> list[pathlib.Path]:
    files = sorted((REPO / "docs").glob("*.md"))
    readme = REPO / "README.md"
    if readme.exists():
        files.append(readme)
    return files


def _rel(path: pathlib.Path) -> str:
    """Repo-relative path for messages; absolute when outside the repo."""
    try:
        return str(path.relative_to(REPO))
    except ValueError:
        return str(path)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading text."""
    slug = heading.strip().lower()
    # Drop everything but word characters, spaces, and hyphens (GitHub
    # keeps unicode word chars; ASCII suffices for these docs).
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def anchors_of(path: pathlib.Path) -> set[str]:
    return {github_slug(m.group(1)) for m in _HEADING.finditer(path.read_text())}


def check_links(files: list[pathlib.Path]) -> list[str]:
    errors = []
    for doc in files:
        text = doc.read_text()
        for match in _LINK.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, fragment = target.partition("#")
            if path_part:
                resolved = (doc.parent / path_part).resolve()
                if not resolved.exists():
                    errors.append(f"{_rel(doc)}: broken link {target}")
                    continue
            else:
                resolved = doc
            if fragment:
                if resolved.is_dir() or resolved.suffix != ".md":
                    errors.append(
                        f"{_rel(doc)}: anchor on non-markdown "
                        f"target {target}"
                    )
                elif fragment not in anchors_of(resolved):
                    errors.append(
                        f"{_rel(doc)}: missing anchor {target}"
                    )
    return errors


def check_doctests(files: list[pathlib.Path]) -> list[str]:
    errors = []
    for doc in files:
        if doc.name == "README.md":
            # The README's snippets are illustrative shell/python blocks,
            # not doctests; only docs/ pages carry the executable contract.
            continue
        results = doctest.testfile(
            str(doc),
            module_relative=False,
            optionflags=doctest.ELLIPSIS | doctest.NORMALIZE_WHITESPACE,
        )
        if results.failed:
            errors.append(
                f"{_rel(doc)}: {results.failed} of "
                f"{results.attempted} doctest(s) failed"
            )
    return errors


def main() -> int:
    files = doc_files()
    if not any(f.parent.name == "docs" for f in files):
        print("error: no docs/*.md files found", file=sys.stderr)
        return 1
    errors = check_links(files) + check_doctests(files)
    for error in errors:
        print(f"error: {error}", file=sys.stderr)
    if not errors:
        attempted = sum(1 for f in files if f.parent.name == "docs")
        print(f"docs ok: {len(files)} file(s) checked, {attempted} with doctests")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
